"""Incremental (dirty-cone) saturation vs the naive full-rescan matcher.

ISSUE 5 rebuilt the matcher stack around incrementality: compiled
trigger programs over the per-op node index, a mod-time journal on the
E-graph, and a saturation loop whose round N matches only against the
dirty cone of round N-1 (``SaturationConfig.incremental_match``).  The
naive full-rescan path is kept as the differential oracle.

Measured here, per workload:

* **median saturation-stage ms** and **median end-to-end ms** per sweep
  over repeated compiles (saturation cache OFF so every compile
  re-saturates; verification off), for the incremental and naive
  matching paths.  Each mode is measured in its own contiguous block:
  the seed baselines below were recorded standalone, and alternating
  two live engines rep-by-rep cross-pollutes allocator and cache state
  enough (~10% observed) to skew the vs-seed ratios;
* **matcher telemetry** from the incremental path: head candidates
  scanned vs pruned by the stamp filter;
* **byte-identical assembly** between the two matching modes.

Acceptance (ISSUE 5) is measured against the *seed* (the pre-refactor
main, commit c5df9a9), whose stage timings were recorded with this exact
config and are committed below and in ``BENCH_saturation.json``:
>= 2x median saturation-stage speedup on byteswap4 and >= 1.2x
end-to-end on the fig2 + byteswap4 + checksum suite, byte-identical
assembly.  The seed ratios are asserted only when the full suite is
measured (``BENCH_SATURATION_WORKLOADS=fig2.dn`` restricts the run —
the CI smoke job does this); the byte-identity assertion always runs.

Results land in ``benchmarks/out/bench_saturation.json``; the repo-root
``BENCH_saturation.json`` summary tracks the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
WORKLOADS = ["fig2.dn", "byteswap4.dn", "checksum.dn"]
SUITE = ("fig2.dn", "byteswap4.dn", "checksum.dn")
REPEATS = {"fig2.dn": 25, "byteswap4.dn": 9, "checksum.dn": 3}

# The bench_incremental flag set: linear search from 1, budgets every
# workload compiles under, saturation budgets from the service defaults.
MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500

# Stage timings measured at the seed commit (the pre-refactor
# interpretive matcher) with this exact config, on the machine that
# produced the committed BENCH_saturation.json.  Sums over each
# workload's GMAs of the observer's per-session stage seconds.
SEED_BASELINE_MS = {
    "fig2.dn": {"saturation": 2.0, "total": 3.2},
    "byteswap4.dn": {"saturation": 305.7, "total": 640.9},
    "checksum.dn": {"saturation": 1695.2, "total": 2689.7},
}


def _selected_workloads():
    env = os.environ.get("BENCH_SATURATION_WORKLOADS")
    if not env:
        return list(WORKLOADS)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, incremental_match):
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=MIN_CYCLES,
        max_cycles=MAX_CYCLES,
        strategy=SearchStrategy.LINEAR,
        verify=False,
        # Saturation must actually run on every compile to be measured.
        enable_saturation_cache=False,
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS,
            max_enodes=MAX_ENODES,
            incremental_match=incremental_match,
        ),
    )
    den = Denali(
        ev6(), axioms=axioms, registry=prog.registry, config=config
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _sweep(den, gmas, stage_stats):
    """One full compile sweep; returns (saturation_s, total_s, stats)."""
    del stage_stats[:]
    start = time.perf_counter()
    for label, gma in gmas:
        den.compile_gma(gma, label=label)
    total = time.perf_counter() - start
    sat = sum(s.timings.get("saturation", 0.0) for s in stage_stats)
    return sat, total, list(stage_stats)


def _measure(path, repeats, stage_stats):
    """Interleaved warm medians for the two matching modes."""
    den_inc, gmas = _build(path, True)
    den_nai, _ = _build(path, False)
    asm_inc, asm_nai = [], []
    for label, gma in gmas:  # warm: axiom corpus, compiled triggers
        r_inc = den_inc.compile_gma(gma, label=label)
        r_nai = den_nai.compile_gma(gma, label=label)
        assert r_inc.schedule is not None, "%s found no schedule" % label
        assert r_nai.schedule is not None, "%s found no schedule" % label
        asm_inc.append(r_inc.assembly)
        asm_nai.append(r_nai.assembly)
    sat_inc, sat_nai, tot_inc, tot_nai = [], [], [], []
    telemetry = None
    for i in range(repeats):
        s, t, collected = _sweep(den_inc, gmas, stage_stats)
        sat_inc.append(s)
        tot_inc.append(t)
        if i == 0:
            telemetry = _matcher_telemetry(collected)
    for i in range(repeats):
        s, t, _ = _sweep(den_nai, gmas, stage_stats)
        sat_nai.append(s)
        tot_nai.append(t)
    return {
        "gmas": len(gmas),
        "sat_inc_ms": 1000 * statistics.median(sat_inc),
        "sat_naive_ms": 1000 * statistics.median(sat_nai),
        "total_inc_ms": 1000 * statistics.median(tot_inc),
        "total_naive_ms": 1000 * statistics.median(tot_nai),
        "assembly_identical": asm_inc == asm_nai,
        "telemetry": telemetry,
    }


def _matcher_telemetry(collected):
    totals = {
        "rounds": 0,
        "matches_attempted": 0,
        "matches_found": 0,
        "matches_pruned": 0,
        "instances_asserted": 0,
    }
    for stats in collected:
        sat = stats.saturation
        if sat is None:
            continue
        for key in totals:
            totals[key] += getattr(sat, key)
    return totals


def test_incremental_saturation(report, stage_stats):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        path = os.path.join(WORKLOAD_DIR, name)
        measured = _measure(path, REPEATS.get(name, 5), stage_stats)
        seed = SEED_BASELINE_MS.get(name)
        entry = {
            "workload": name,
            "repeats": REPEATS.get(name, 5),
            "gmas": measured["gmas"],
            "saturation_ms": {
                "incremental": round(measured["sat_inc_ms"], 3),
                "naive": round(measured["sat_naive_ms"], 3),
                "seed": seed["saturation"] if seed else None,
            },
            "end_to_end_ms": {
                "incremental": round(measured["total_inc_ms"], 3),
                "naive": round(measured["total_naive_ms"], 3),
                "seed": seed["total"] if seed else None,
            },
            "saturation_speedup_vs_seed": round(
                seed["saturation"] / measured["sat_inc_ms"], 3
            )
            if seed
            else None,
            "end_to_end_speedup_vs_seed": round(
                seed["total"] / measured["total_inc_ms"], 3
            )
            if seed
            else None,
            "assembly_identical": measured["assembly_identical"],
            "matcher": measured["telemetry"],
        }
        entries.append(entry)

    suite = [e for e in entries if e["workload"] in SUITE]
    suite_complete = {e["workload"] for e in suite} == set(SUITE)
    suite_speedup = None
    if suite_complete:
        seed_total = sum(SEED_BASELINE_MS[e["workload"]]["total"] for e in suite)
        inc_total = sum(e["end_to_end_ms"]["incremental"] for e in suite)
        suite_speedup = round(seed_total / inc_total, 3)

    result = {
        "workloads": [e["workload"] for e in entries],
        "strategy": "linear",
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "suite": {
            "workloads": list(SUITE),
            "complete": suite_complete,
            "end_to_end_speedup_vs_seed": suite_speedup,
        },
    }
    with open(
        os.path.join(output_dir(), "bench_saturation.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # The repo-root summary CI commits so the perf trajectory is tracked
    # across PRs (full detail stays in benchmarks/out/).  Partial runs
    # (the CI fig2 smoke) merge into the existing file: they refresh the
    # workloads they measured and touch the suite speedup only when the
    # whole suite ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_saturation.json")
    summary = {
        "bench": "incremental saturation vs naive full-rescan matching",
        "seed_baseline_ms": SEED_BASELINE_MS,
        "suite": {
            "workloads": list(SUITE),
            "complete": False,
            "end_to_end_speedup_vs_seed": None,
        },
        "median_ms": {},
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["median_ms"][e["workload"]] = {
            "saturation": e["saturation_ms"],
            "end_to_end": e["end_to_end_ms"],
            "saturation_speedup_vs_seed": e["saturation_speedup_vs_seed"],
            "end_to_end_speedup_vs_seed": e["end_to_end_speedup_vs_seed"],
        }
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE),
            "complete": True,
            "end_to_end_speedup_vs_seed": suite_speedup,
        }
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      gmas  sat inc  sat naive  seed sat  vs seed  "
        "identical  pruned/attempted",
    ]
    for e in entries:
        matcher = e["matcher"] or {}
        lines.append(
            "%-12s  %4d  %6.1f   %7.1f   %7.1f  %6.2fx  %-9s  %d/%d"
            % (
                e["workload"],
                e["gmas"],
                e["saturation_ms"]["incremental"],
                e["saturation_ms"]["naive"],
                e["saturation_ms"]["seed"] or 0.0,
                e["saturation_speedup_vs_seed"] or 0.0,
                e["assembly_identical"],
                matcher.get("matches_pruned", 0),
                matcher.get("matches_pruned", 0)
                + matcher.get("matches_attempted", 0),
            )
        )
    if suite_speedup is not None:
        lines.append(
            "suite (%s): %.2fx end-to-end vs seed"
            % (" + ".join(e["workload"] for e in suite), suite_speedup)
        )
    report(
        "incremental saturation vs naive rescan (warm, verify off, "
        "saturation cache off)",
        "\n".join(lines),
    )

    for e in entries:
        assert e["assembly_identical"], (
            "%s: incremental and naive matching emitted different assembly"
            % e["workload"]
        )
    if suite_complete:
        byteswap = next(
            e for e in entries if e["workload"] == "byteswap4.dn"
        )
        assert byteswap["saturation_speedup_vs_seed"] >= 2.0, (
            "byteswap4 saturation speedup %.2fx < 2x vs seed"
            % byteswap["saturation_speedup_vs_seed"]
        )
        assert suite_speedup >= 1.2, (
            "fig2 + byteswap4 + checksum end-to-end speedup %.2fx < 1.2x "
            "vs seed" % suite_speedup
        )
