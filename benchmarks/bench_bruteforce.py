"""E4 — brute-force enumeration vs. goal-directed search (paper sections 1.1, 8).

Paper: "Brute-force enumeration of all code sequences is glacially slow.
Massalin succeeded in finding impressive short code sequences, but his
method seems to be limited to sequences of around half-a-dozen
instructions. ... while we were able to generate five-instruction
sequences [with the GNU superoptimizer], we were unable to generate longer
sequences in an amount of time that we were willing to wait (several
days)."

Reproduced claims: the number of enumerated sequences (and hence time)
explodes geometrically with program length, while Denali solves the same
goals — and much longer ones, like the 10-instruction byteswap4 — by
goal-directed search in seconds.
"""

from repro import Denali, const, ev6, inp, mk, simple_risc
from repro.baselines import brute_force_search
from repro.baselines.bruteforce import goal_from_term
from repro.util import format_table

from benchmarks.conftest import byteswap_goal, default_config

REPERTOIRE = ["add64", "sub64", "and64", "bis", "xor64", "not64", "sll", "srl"]

# Goals of increasing optimal length over the restricted repertoire.
GOALS = [
    ("a+1", mk("add64", inp("a"), const(1)), 1),
    ("-a", mk("sub64", const(0), inp("a")), 2),
    ("(a|1)^(a>>1)", mk("xor64", mk("bis", inp("a"), const(1)),
                        mk("srl", inp("a"), const(1))), 3),
]


def test_bruteforce_explosion(report, benchmark):
    rows = []
    # The solvable goals are all found (and at their known optimal length).
    for name, term, expected_len in GOALS:
        goal = goal_from_term(term, ["a"])
        res = brute_force_search(
            goal,
            1,
            max_length=expected_len,
            repertoire=REPERTOIRE,
            immediates=(0, 1),
        )
        assert res.found, name
        assert res.length == expected_len
        rows.append(
            [
                name,
                str(expected_len),
                "%d (stops at first hit)" % res.sequences_tested,
                "%.2f s" % res.time_seconds,
            ]
        )

    # The explosion itself: exhaust each length for a goal that is NOT in
    # the search space (umulh is excluded from the repertoire), so the
    # enumeration runs to completion.
    unreachable = goal_from_term(mk("umulh", inp("a"), inp("a")), ["a"])
    tested_counts = []
    for length in (1, 2, 3):
        res = brute_force_search(
            unreachable,
            1,
            max_length=length,
            repertoire=REPERTOIRE,
            immediates=(0, 1),
            max_sequences=400_000,
        )
        assert not res.found
        tested_counts.append(res.sequences_tested)
        rows.append(
            [
                "exhaust length %d (unreachable goal)" % length,
                "-",
                "%d sequences" % res.sequences_tested,
                "%.2f s" % res.time_seconds,
            ]
        )
    # Geometric explosion: each extra instruction multiplies the space.
    assert tested_counts[1] > tested_counts[0] * 20
    assert tested_counts[2] > tested_counts[1] * 10

    # Denali solves the longest goal too — by search, not enumeration.
    den = Denali(simple_risc(), config=default_config(min_cycles=1, max_cycles=5))
    denali_res = den.compile_term(GOALS[2][1])
    assert denali_res.verified

    # And a goal far beyond brute force's reach: byteswap4 (10 instructions
    # on the EV6) — the paper could not get the GNU superoptimizer past
    # five-instruction sequences.
    den6 = Denali(ev6(), config=default_config(min_cycles=4, max_cycles=6))
    bs = den6.compile_term(byteswap_goal(4))
    assert bs.verified
    assert bs.schedule.instruction_count() >= 8

    benchmark(
        lambda: brute_force_search(
            goal_from_term(GOALS[1][1], ["a"]),
            1,
            max_length=2,
            repertoire=REPERTOIRE,
            immediates=(0, 1),
        ).found
    )

    rows.append(
        [
            "byteswap4 (Denali, goal-directed)",
            "%d instrs" % bs.schedule.instruction_count(),
            "n/a (no enumeration)",
            "%.1f s" % bs.elapsed_seconds,
        ]
    )
    report(
        "E4 brute force (Massalin/GNU-superopt style) vs. goal-directed search",
        format_table(
            ["goal", "program length", "sequences enumerated", "time"], rows
        )
        + "\npaper: brute force limited to ~6 instructions; "
        "Denali reached 31 instructions (checksum).",
    )
