"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks print a
paper-vs-measured table; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables inline, or read ``bench_output.txt``.  Generated
telemetry (``bench_stages.json``, ``bench_service.json``) lands in the
git-ignored ``benchmarks/out/`` directory.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import DenaliConfig, SearchStrategy, const, inp, mk
from repro.core.session import add_observer, aggregate_stats, remove_observer
from repro.matching import SaturationConfig


def output_dir() -> str:
    """``benchmarks/out/``, created on demand (git-ignored)."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    os.makedirs(path, exist_ok=True)
    return path


def byteswap_goal(n: int):
    """r<i> := a<n-1-i>, the Figure 3 byte swap as a term."""
    a = inp("a")
    r = const(0)
    for i in range(n):
        r = mk("storeb", r, const(i), mk("selectb", a, const(n - 1 - i)))
    return r


def default_config(max_cycles: int = 8, **kwargs) -> DenaliConfig:
    defaults = dict(
        min_cycles=2,
        max_cycles=max_cycles,
        strategy=SearchStrategy.LINEAR,
        saturation=SaturationConfig(max_rounds=16, max_enodes=6000),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


@pytest.fixture(autouse=True)
def stage_stats(request):
    """Collect per-stage session telemetry for every benchmark test.

    Each compilation that finishes during the test announces its
    :class:`~repro.core.session.StageStats` to this observer; the
    breakdowns are aggregated per test and dumped to
    ``benchmarks/out/bench_stages.json`` at the end of the run (see
    ``pytest_sessionfinish``).
    """
    collected = []
    add_observer(collected.append)
    yield collected
    remove_observer(collected.append)
    if collected:
        record = {"test": request.node.nodeid}
        record.update(aggregate_stats(collected))
        _STAGE_RECORDS.append(record)


_STAGE_RECORDS = []


def pytest_sessionfinish(session):
    if not _STAGE_RECORDS:
        return
    path = os.path.join(output_dir(), "bench_stages.json")
    try:
        with open(path, "w") as handle:
            json.dump({"tests": _STAGE_RECORDS}, handle, indent=2)
            handle.write("\n")
    except OSError:
        pass


@pytest.fixture
def report(capsys):
    """Print a table unconditionally (benchmarks run with -s or teed)."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("### %s" % title)
            print(body)

    return _print
