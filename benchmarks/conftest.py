"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks print a
paper-vs-measured table; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables inline, or read ``bench_output.txt``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import DenaliConfig, SearchStrategy, const, inp, mk
from repro.core.session import add_observer, remove_observer
from repro.matching import SaturationConfig


def byteswap_goal(n: int):
    """r<i> := a<n-1-i>, the Figure 3 byte swap as a term."""
    a = inp("a")
    r = const(0)
    for i in range(n):
        r = mk("storeb", r, const(i), mk("selectb", a, const(n - 1 - i)))
    return r


def default_config(max_cycles: int = 8, **kwargs) -> DenaliConfig:
    defaults = dict(
        min_cycles=2,
        max_cycles=max_cycles,
        strategy=SearchStrategy.LINEAR,
        saturation=SaturationConfig(max_rounds=16, max_enodes=6000),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


@pytest.fixture(autouse=True)
def stage_stats(request):
    """Collect per-stage session telemetry for every benchmark test.

    Each compilation that finishes during the test announces its
    :class:`~repro.core.session.StageStats` to this observer; the
    breakdowns are aggregated per test and dumped to
    ``bench_stages.json`` at the end of the run (see
    ``pytest_sessionfinish``).
    """
    collected = []
    add_observer(collected.append)
    yield collected
    remove_observer(collected.append)
    if collected:
        _STAGE_RECORDS.append(
            {
                "test": request.node.nodeid,
                "sessions": len(collected),
                "timings": _sum_timings(collected),
                "cache": _sum_cache(collected),
                "probes": sum(len(s.probes) for s in collected),
            }
        )


_STAGE_RECORDS = []


def _sum_timings(collected):
    totals = {}
    for stats in collected:
        for stage, seconds in stats.timings.items():
            totals[stage] = totals.get(stage, 0.0) + seconds
    return {k: round(v, 6) for k, v in totals.items()}


def _sum_cache(collected):
    totals = {}
    for stats in collected:
        for key, value in stats.cache.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def pytest_sessionfinish(session):
    if not _STAGE_RECORDS:
        return
    path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_stages.json"
    )
    try:
        with open(path, "w") as handle:
            json.dump({"tests": _STAGE_RECORDS}, handle, indent=2)
            handle.write("\n")
    except OSError:
        pass


@pytest.fixture
def report(capsys):
    """Print a table unconditionally (benchmarks run with -s or teed)."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("### %s" % title)
            print(body)

    return _print
