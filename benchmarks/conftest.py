"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks print a
paper-vs-measured table; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables inline, or read ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro import DenaliConfig, SearchStrategy, const, inp, mk
from repro.matching import SaturationConfig


def byteswap_goal(n: int):
    """r<i> := a<n-1-i>, the Figure 3 byte swap as a term."""
    a = inp("a")
    r = const(0)
    for i in range(n):
        r = mk("storeb", r, const(i), mk("selectb", a, const(n - 1 - i)))
    return r


def default_config(max_cycles: int = 8, **kwargs) -> DenaliConfig:
    defaults = dict(
        min_cycles=2,
        max_cycles=max_cycles,
        strategy=SearchStrategy.LINEAR,
        saturation=SaturationConfig(max_rounds=16, max_enodes=6000),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


@pytest.fixture
def report(capsys):
    """Print a table unconditionally (benchmarks run with -s or teed)."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("### %s" % title)
            print(body)

    return _print
