"""Exact e-graph extraction vs the greedy canonical decode.

ISSUE 9 adds a cost-aware extraction stage: once the SAT ladder has
proved the minimum cycle count, ``extraction="exact"`` re-enters the
session's incremental solver and minimises the schedule's
*selected-term cost* (the sum of the EV6 latencies of the distinct
terms it computes) among all same-cycle schedules, with adaptive
dominance pruning trimming the candidate set first
(``src/repro/extraction/``).

Measured here, per workload of the fig2 + byteswap4 + checksum suite:

* **quality** — greedy vs exact selected-term cost (from the session's
  ``stats.extraction`` record), the improvement count, and whether the
  exact answer was proved optimal.  Acceptance: exact <= greedy on
  every workload, with at least one strict improvement across the full
  suite, and both modes' schedules verify at identical cycle counts.
* **wall-clock** — median ms/compile for both modes, interleaved so
  machine-load drift lands on both streams.  Acceptance: the full
  suite's exact/greedy time ratio stays <= the slowdown ceiling (the
  refinement is a few extra bounded solver calls, not a new ladder).

Results land in ``benchmarks/out/bench_extraction.json``; the repo-root
``BENCH_extraction.json`` summary tracks the trajectory across PRs.
``BENCH_EXTRACTION_WORKLOADS=fig2.dn`` restricts the run (the CI smoke
job does this); the suite-level gates apply only to complete runs,
while the per-workload exact <= greedy invariant always applies.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
SUITE = ("fig2.dn", "byteswap4.dn", "checksum.dn")
REPEATS = {"fig2.dn": 15, "byteswap4.dn": 5, "checksum.dn": 3}

MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500
SEED = 20020617
SUITE_SLOWDOWN_CEILING = 1.25


def _selected_workloads():
    env = os.environ.get("BENCH_EXTRACTION_WORKLOADS")
    if not env:
        return list(SUITE)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, extraction):
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=MIN_CYCLES,
        max_cycles=MAX_CYCLES,
        strategy=SearchStrategy.LINEAR,
        extraction=extraction,
        seed=SEED,
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS, max_enodes=MAX_ENODES
        ),
    )
    den = Denali(
        ev6(), axioms=axioms, registry=prog.registry, config=config
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _measure(path, repeats):
    """Quality + median seconds per compile, greedy vs exact, interleaved."""
    den_greedy, gmas = _build(path, "greedy")
    den_exact, _ = _build(path, "exact")
    quality = []
    for label, gma in gmas:  # warm pass doubles as the quality check
        rg = den_greedy.compile_gma(gma, label=label)
        rx = den_exact.compile_gma(gma, label=label)
        assert rg.schedule is not None, "%s found no schedule" % label
        assert rx.schedule is not None, "%s found no schedule" % label
        assert rg.verified and rx.verified, label
        assert rx.cycles == rg.cycles, (
            "%s: exact changed the cycle count (%s != %s)"
            % (label, rx.cycles, rg.cycles)
        )
        g_rec, x_rec = rg.stats.extraction, rx.stats.extraction
        quality.append(
            {
                "label": label,
                "cycles": rg.cycles,
                "greedy_cost": g_rec["cost"],
                "exact_cost": x_rec["cost"],
                "improved": bool(x_rec.get("improved")),
                "proved": bool(x_rec.get("proved")),
                "solves": x_rec.get("solves", 0),
                "pruned": x_rec.get("pruned", 0),
                "candidates": x_rec.get("candidates", 0),
            }
        )
    t_greedy, t_exact = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        for label, gma in gmas:
            den_greedy.compile_gma(gma, label=label)
        t_greedy.append((time.perf_counter() - start) / len(gmas))
        start = time.perf_counter()
        for label, gma in gmas:
            den_exact.compile_gma(gma, label=label)
        t_exact.append((time.perf_counter() - start) / len(gmas))
    return statistics.median(t_greedy), statistics.median(t_exact), quality


def test_extraction_quality_and_overhead(report):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        path = os.path.join(WORKLOAD_DIR, name)
        t_greedy, t_exact, quality = _measure(path, REPEATS.get(name, 3))
        entries.append(
            {
                "workload": name,
                "gmas": quality,
                "greedy_ms_per_compile": round(1000 * t_greedy, 3),
                "exact_ms_per_compile": round(1000 * t_exact, 3),
                "slowdown_exact_over_greedy": round(t_exact / t_greedy, 3),
                "greedy_cost": sum(q["greedy_cost"] for q in quality),
                "exact_cost": sum(q["exact_cost"] for q in quality),
                "improved_gmas": sum(1 for q in quality if q["improved"]),
                "proved_gmas": sum(1 for q in quality if q["proved"]),
            }
        )

    suite_complete = {e["workload"] for e in entries} == set(SUITE)
    suite_slowdown = None
    suite_improved = sum(e["improved_gmas"] for e in entries)
    if entries:
        greedy_total = sum(e["greedy_ms_per_compile"] for e in entries)
        exact_total = sum(e["exact_ms_per_compile"] for e in entries)
        suite_slowdown = round(exact_total / greedy_total, 3)

    result = {
        "workloads": selected,
        "strategy": "linear",
        "seed": SEED,
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "suite": {
            "workloads": list(SUITE),
            "complete": suite_complete,
            "slowdown_exact_over_greedy": suite_slowdown,
            "improved_gmas": suite_improved,
        },
    }
    with open(
        os.path.join(output_dir(), "bench_extraction.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # The repo-root summary CI commits so the trajectory is tracked
    # across PRs.  Partial runs (the CI fig2 smoke) merge into the
    # existing file: they refresh the workloads they measured and touch
    # the suite record only when the whole suite ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_extraction.json")
    summary = {
        "bench": "exact extraction vs greedy canonical decode",
        "suite": {
            "workloads": list(SUITE),
            "complete": False,
            "slowdown_exact_over_greedy": None,
            "improved_gmas": None,
        },
        "per_workload": {},
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["per_workload"][e["workload"]] = {
            "greedy_cost": e["greedy_cost"],
            "exact_cost": e["exact_cost"],
            "improved_gmas": e["improved_gmas"],
            "proved_gmas": e["proved_gmas"],
            "greedy_ms": e["greedy_ms_per_compile"],
            "exact_ms": e["exact_ms_per_compile"],
            "slowdown": e["slowdown_exact_over_greedy"],
        }
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE),
            "complete": True,
            "slowdown_exact_over_greedy": suite_slowdown,
            "improved_gmas": suite_improved,
        }
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      greedy  exact  improved  greedy ms  exact ms  slowdown",
    ]
    for e in entries:
        lines.append(
            "%-12s  %6d  %5d  %8d  %9.1f  %8.1f  %8.3f"
            % (
                e["workload"],
                e["greedy_cost"],
                e["exact_cost"],
                e["improved_gmas"],
                e["greedy_ms_per_compile"],
                e["exact_ms_per_compile"],
                e["slowdown_exact_over_greedy"],
            )
        )
    if suite_complete:
        lines.append(
            "suite: %d gma(s) strictly improved, slowdown %.3f (ceiling %.2f)"
            % (suite_improved, suite_slowdown, SUITE_SLOWDOWN_CEILING)
        )
    report("exact extraction: quality + overhead vs greedy",
           "\n".join(lines))

    # Per-workload invariant regardless of narrowing: never worse.
    for e in entries:
        assert e["exact_cost"] <= e["greedy_cost"], e
        for q in e["gmas"]:
            assert q["exact_cost"] <= q["greedy_cost"], q
    if suite_complete:
        assert suite_improved >= 1, (
            "exact extraction never beat greedy on the suite: %r" % entries
        )
        assert suite_slowdown <= SUITE_SLOWDOWN_CEILING, (
            "exact extraction too slow: suite slowdown %.3f > %.2f"
            % (suite_slowdown, SUITE_SLOWDOWN_CEILING)
        )
