"""E7 — the Figure 2 matching walkthrough, quantified.

Paper Figure 2 shows the E-graph for ``reg6*4 + 1`` growing through four
stages: (a) the bare term DAG (multiply+add only), (b) after recording
``4 = 2**2`` (no new computation yet), (c) after the shift axiom fires
(shift+add appears), (d) after the ``s4addl`` axiom fires (the
single-instruction computation appears, "superior to both of the other
possibilities").

Reproduced claims: the staged axiom sets produce exactly that progression
of machine-computable alternatives, and the compiled result is the
one-instruction, one-cycle scaled-add.
"""

from repro import (
    Denali,
    EGraph,
    const,
    default_registry,
    ev6,
    inp,
    mk,
    parse_axiom_file,
)
from repro.axioms import AxiomSet
from repro.egraph.analysis import count_ways
from repro.matching import SaturationConfig, saturate
from repro.util import format_table

from benchmarks.conftest import default_config

SHIFT_AXIOM = r"""
(\axiom (forall (k n) (pats (\mul64 k (\pow 2 n)))
    (or (neq n (\and64 n 63))
        (eq (\mul64 k (\pow 2 n)) (\sll k n)))))
"""

S4ADDQ_AXIOMS = r"""
(\axiom (forall (k n) (pats (\add64 (\mul64 4 k) n) (\s4addq k n))
    (eq (\s4addq k n) (\add64 (\mul64 4 k) n))))
(\axiom (forall (x y) (pats (\mul64 x y))
    (eq (\mul64 x y) (\mul64 y x))))
"""


def test_figure2_stages(report, benchmark):
    reg = default_registry()
    spec = ev6()
    goal_term = mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))

    eg = EGraph()
    goal = eg.add_term(goal_term)

    def ways():
        return count_ways(eg, goal, is_computable_op=spec.is_machine_op)

    stages = []
    stages.append(("(a) initial term DAG", ways()))

    saturate(eg, AxiomSet(), reg, SaturationConfig(max_rounds=2))
    has_pow = any(n.op == "pow" for n, _ in eg.all_nodes())
    stages.append(("(b) after 4 = 2**2", ways()))

    saturate(eg, parse_axiom_file(SHIFT_AXIOM, reg), reg)
    stages.append(("(c) after k*2**n = k<<n", ways()))

    saturate(eg, parse_axiom_file(S4ADDQ_AXIOMS, reg), reg)
    stages.append(("(d) after s4addq axiom", ways()))

    assert has_pow
    assert stages[0][1] == 1  # mul+add only
    assert stages[1][1] == 1  # ** is not a machine op: no new way yet
    assert stages[2][1] == 2  # shift+add appears
    assert stages[3][1] >= 3  # s4addq appears

    result = Denali(
        ev6(), config=default_config(min_cycles=1, max_cycles=8)
    ).compile_term(goal_term)
    assert result.cycles == 1
    assert result.optimal
    assert result.schedule.instructions[0].mnemonic == "s4addq"

    benchmark(
        lambda: Denali(
            ev6(), config=default_config(min_cycles=1, max_cycles=2)
        ).compile_term(goal_term).cycles
    )

    paper_desc = {
        0: "multiply+add only",
        1: "no new way (no ** instruction)",
        2: "shift+add appears",
        3: "single s4addl appears (best)",
    }
    rows = [
        [name, paper_desc[i], "%d machine way(s)" % w]
        for i, (name, w) in enumerate(stages)
    ]
    rows.append(
        ["compiled result", "s4addl reg6,1", "%s (1 cycle, optimal)"
         % result.schedule.instructions[0].mnemonic]
    )
    report(
        "E7 Figure 2 walkthrough: ways of computing reg6*4+1 per stage",
        format_table(["stage", "paper", "measured"], rows),
    )
