"""Persistent incremental SAT across the probe ladder vs per-probe rebuild.

The probe ladder asks "is there a program in <= K cycles?" for a run of
budgets K.  PR 1 rebuilt the CDCL solver from a fresh CNF for every
probe; the incremental path (``DenaliConfig.enable_incremental_solver``)
keeps one solver per session, gates budget-local clauses behind selector
literals, and lets learned clauses from one probe prune the next.

Measured here, per workload and per search strategy:

* **median ms/compile** over repeated warm compiles (saturation cache
  hot, verification off — the probe ladder is what changes), for the
  incremental path and the from-scratch path;
* **probe-ladder telemetry** from the incremental solver: propagations,
  conflicts, learned clauses and how many carried over between probes;
* **byte-identical assembly** between the two paths (both decode the
  canonical lexicographically-least model, so the emitted code must
  match exactly).

Acceptance (ISSUE 3): >= 1.5x median speedup over the from-scratch
probe path on the fig2 + byteswap4 suite, byte-identical assembly.
fig2 alone is a single trivial SAT probe (sub-millisecond solver work
dominated by fixed pipeline overhead), so the suite metric is dominated
by byteswap4's real ladder; both per-workload medians are reported.

Results land in ``benchmarks/out/bench_incremental.json``; the
repo-root ``BENCH_incremental.json`` summary tracks the trajectory
across PRs.  ``BENCH_INCREMENTAL_WORKLOADS=fig2.dn`` restricts the run
(the CI smoke job does this); the >= 1.5x assertion applies only when
the full fig2 + byteswap4 suite is measured.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
# Headline suite first; checksum rides along for the README table.
WORKLOADS = ["fig2.dn", "byteswap4.dn", "checksum.dn"]
SUITE = ("fig2.dn", "byteswap4.dn")
REPEATS = {"fig2.dn": 25, "byteswap4.dn": 7, "checksum.dn": 3}

# The bench_service flag set: linear search from 1, budgets every
# workload compiles under.
MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500


def _selected_workloads():
    env = os.environ.get("BENCH_INCREMENTAL_WORKLOADS")
    if not env:
        return list(WORKLOADS)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, incremental):
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=MIN_CYCLES,
        max_cycles=MAX_CYCLES,
        strategy=SearchStrategy.LINEAR,
        verify=False,
        enable_incremental_solver=incremental,
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS, max_enodes=MAX_ENODES
        ),
    )
    den = Denali(
        ev6(), axioms=axioms, registry=prog.registry, config=config
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _measure(path, repeats, stage_stats):
    """Median seconds per GMA compile for both solver paths.

    The two modes are interleaved — every iteration times one
    incremental sweep then one from-scratch sweep — so load drift on a
    shared machine lands on both streams instead of biasing whichever
    mode happened to run during the slow phase.
    """
    den_inc, gmas = _build(path, True)
    den_scr, _ = _build(path, False)
    asm_inc, asm_scr = [], []
    for label, gma in gmas:  # warm: saturation cache, axiom corpus
        r_inc = den_inc.compile_gma(gma, label=label)
        r_scr = den_scr.compile_gma(gma, label=label)
        assert r_inc.schedule is not None, "%s found no schedule" % label
        assert r_scr.schedule is not None, "%s found no schedule" % label
        asm_inc.append(r_inc.assembly)
        asm_scr.append(r_scr.assembly)
    t_inc, t_scr = [], []
    telemetry = None
    for i in range(repeats):
        collect = i == 0
        if collect:
            del stage_stats[:]
        start = time.perf_counter()
        for label, gma in gmas:
            den_inc.compile_gma(gma, label=label)
        t_inc.append((time.perf_counter() - start) / len(gmas))
        if collect:
            telemetry = _probe_telemetry(stage_stats)
        start = time.perf_counter()
        for label, gma in gmas:
            den_scr.compile_gma(gma, label=label)
        t_scr.append((time.perf_counter() - start) / len(gmas))
    return (
        statistics.median(t_inc),
        statistics.median(t_scr),
        asm_inc,
        asm_scr,
        telemetry,
    )


def _probe_telemetry(stage_stats):
    """Solver hot-path counters summed over one mode's measured probes."""
    totals = {
        "probes": 0,
        "propagations": 0,
        "conflicts": 0,
        "learned": 0,
        "learned_reused": 0,
    }
    for stats in stage_stats:
        for probe in stats.probes:
            totals["probes"] += 1
            totals["propagations"] += probe.propagations
            totals["conflicts"] += probe.conflicts
            totals["learned"] += probe.learned
            totals["learned_reused"] += probe.learned_reused
    return totals


def test_incremental_ladder(report, stage_stats):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        path = os.path.join(WORKLOAD_DIR, name)
        repeats = REPEATS.get(name, 5)
        t_inc, t_scr, asm_inc, asm_scr, telemetry = _measure(
            path, repeats, stage_stats
        )
        entries.append(
            {
                "workload": name,
                "repeats": repeats,
                "gmas": len(asm_inc),
                "incremental_ms_per_compile": round(1000 * t_inc, 3),
                "scratch_ms_per_compile": round(1000 * t_scr, 3),
                "speedup": round(t_scr / t_inc, 3),
                "assembly_identical": asm_inc == asm_scr,
                "incremental_probes": telemetry,
            }
        )

    suite = [e for e in entries if e["workload"] in SUITE]
    suite_complete = {e["workload"] for e in suite} == set(SUITE)
    suite_speedup = None
    if suite:
        inc_total = sum(e["incremental_ms_per_compile"] for e in suite)
        scr_total = sum(e["scratch_ms_per_compile"] for e in suite)
        suite_speedup = round(scr_total / inc_total, 3)

    result = {
        "workloads": [e["workload"] for e in entries],
        "strategy": "linear",
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "suite": {
            "workloads": list(SUITE),
            "complete": suite_complete,
            "speedup_vs_scratch": suite_speedup,
        },
    }
    with open(
        os.path.join(output_dir(), "bench_incremental.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # The repo-root summary CI commits so the perf trajectory is tracked
    # across PRs (full detail stays in benchmarks/out/).  Partial runs
    # (the CI fig2 smoke) merge into the existing file: they refresh the
    # workloads they measured and touch the suite speedup only when the
    # whole suite ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_incremental.json")
    summary = {
        "bench": "incremental SAT vs per-probe rebuild",
        "suite": {
            "workloads": list(SUITE),
            "complete": False,
            "speedup_vs_scratch": None,
        },
        "median_ms_per_compile": {},
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["median_ms_per_compile"][e["workload"]] = {
            "incremental": e["incremental_ms_per_compile"],
            "scratch": e["scratch_ms_per_compile"],
            "speedup": e["speedup"],
        }
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE),
            "complete": True,
            "speedup_vs_scratch": suite_speedup,
        }
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      gmas  inc ms   scr ms   speedup  identical  reuse",
    ]
    for e in entries:
        lines.append(
            "%-12s  %4d  %6.1f   %6.1f   %6.2fx  %-9s  %d/%d learnt kept"
            % (
                e["workload"],
                e["gmas"],
                e["incremental_ms_per_compile"],
                e["scratch_ms_per_compile"],
                e["speedup"],
                e["assembly_identical"],
                e["incremental_probes"]["learned_reused"],
                e["incremental_probes"]["learned"],
            )
        )
    if suite_speedup is not None:
        lines.append(
            "suite (%s): %.2fx median speedup vs from-scratch"
            % (" + ".join(sorted(e["workload"] for e in suite)), suite_speedup)
        )
    report("incremental SAT vs per-probe rebuild (warm, verify off)",
           "\n".join(lines))

    for e in entries:
        assert e["assembly_identical"], (
            "%s: incremental and from-scratch paths emitted different "
            "assembly" % e["workload"]
        )
    if suite_complete:
        assert suite_speedup >= 1.5, (
            "fig2 + byteswap4 suite speedup %.2fx < 1.5x" % suite_speedup
        )
