"""E-fabric — sharded fabric soak vs the pre-PR single-node stack.

Drives thousands of concurrent jobs (the fig2 + byteswap4 + checksum
mix, seed-varied into distinct fingerprints, then repeated hot) against
three topologies:

* **blocking** — the pre-PR stack: blocking ``ThreadingHTTPServer``
  front end plus the legacy per-request ``urllib`` client (one TCP
  connection + full HTTP parse per call), warm store;
* **fabric 1-node** — one :class:`FabricNode` (asyncio front end,
  keep-alive clients, bounded admission), warm store;
* **fabric 3-node** — three nodes on localhost, ring-sharded, gossip
  replication on.

The soak phase is store-hit dominated on purpose: with the corpus and
results warm, the request path (accept, parse, route, respond) is the
bottleneck, which is exactly what the fabric rebuilt — and the only
axis that can show on a 1-CPU runner, where three Python nodes share
one core and CPU-bound 3-node scaling is physically unmeasurable
(measured there, fabric3/fabric1 is ~0.7-0.8x: pure process overhead).
Gates are therefore tiered by what the machine can prove:

* with >= 4 cores (3 nodes + driver): fabric 3-node >= 2.5x the
  blocking baseline's soak throughput;
* always (full matrix): fabric 1-node >= 2.0x blocking, fabric 3-node
  >= 1.5x blocking, and fabric 3-node soak p99 <= half the blocking
  p99 — the tail is where the blocking stack collapses (~1s p99 at 16
  concurrent clients vs ~50ms for the fabric).

Also measured, per the ISSUE:

* **shed behaviour** — a tiny ``--max-queue`` node under a sleep-job
  burst must shed (429) with ``Retry-After`` in [1, 30] while every
  *admitted* job completes (zero lost) with bounded p99;
* **cold vs warm first compile** — time from node boot to first
  compile result, for an isolated cold node vs one that joined a
  warmed fabric and had the corpus shipped;
* **byte-identical assembly** across all topologies.

Env knobs (CI smoke): ``BENCH_FABRIC_JOBS`` (soak submissions per
topology, default 3000), ``BENCH_FABRIC_THREADS`` (default 16),
``BENCH_FABRIC_PROFILES`` (csv subset of blocking,fabric1,fabric3).
Gates assert only on a full run (all profiles, >= 2000 jobs).
Results land in ``benchmarks/out/bench_fabric.json``; the repo-root
``BENCH_fabric.json`` summary tracks the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
WORKLOADS = ["fig2.dn", "byteswap4.dn", "checksum.dn"]

JOBS = int(os.environ.get("BENCH_FABRIC_JOBS", "3000"))
THREADS = int(os.environ.get("BENCH_FABRIC_THREADS", "16"))
PROFILES = [
    p.strip()
    for p in os.environ.get(
        "BENCH_FABRIC_PROFILES", "blocking,fabric1,fabric3"
    ).split(",")
    if p.strip()
]
FULL_RUN = (
    set(PROFILES) == {"blocking", "fabric1", "fabric3"} and JOBS >= 2000
)


def _specs(seeds=(0,), timeout=300.0):
    """The workload mix; distinct seeds give distinct fingerprints."""
    from repro.service import JobSpec

    specs = []
    for seed in seeds:
        for name in WORKLOADS:
            with open(os.path.join(WORKLOAD_DIR, name)) as handle:
                source = handle.read()
            specs.append(
                JobSpec(
                    kind="compile",
                    source=source,
                    name=name,
                    strategy="linear",
                    min_cycles=1,
                    max_cycles=10,
                    max_rounds=8,
                    max_enodes=2500,
                    seed=seed,
                    timeout_seconds=timeout,
                )
            )
    return specs


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


class _LegacyClient:
    """The pre-PR client: one urllib connection per request."""

    def __init__(self, url, timeout=30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path, body=None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, headers=headers
        )
        # Retry TCP-level transients (accept-backlog resets under the
        # thread burst) so the zero-lost gate measures jobs, not RSTs;
        # the fabric client retries these too.
        for attempt in range(3):
            try:
                with urllib.request.urlopen(
                    req, timeout=self.timeout
                ) as resp:
                    payload = json.loads(resp.read().decode("utf-8"))
                    payload["_http_status"] = resp.status
                    return payload
            except urllib.error.HTTPError as exc:
                payload = json.loads(exc.read().decode("utf-8") or "{}")
                payload["_http_status"] = exc.code
                return payload
            except (urllib.error.URLError, OSError):
                if attempt == 2:
                    raise
                time.sleep(0.02 * (attempt + 1))

    def submit(self, specs):
        body = {"jobs": [spec.to_dict() for spec in specs]}
        return self._request("/v1/submit", body)["ids"]

    def result(self, job_id):
        while True:
            payload = self._request("/v1/jobs/%s/result" % job_id)
            if payload["_http_status"] != 202:
                return payload
            time.sleep(0.01)

    def close(self):
        pass


def _units(payload):
    """label -> assembly, for blocking- or fabric-shaped results."""
    result = payload.get("result", payload)
    return {
        unit["label"]: unit["assembly"] for unit in result.get("units", [])
    }


def _soak(make_client, specs, jobs, threads):
    """Submit+await ``jobs`` hot requests from ``threads`` workers."""
    counter = {"next": 0}
    counter_lock = threading.Lock()
    latencies = []
    errors = []
    done = []
    lat_lock = threading.Lock()

    def worker():
        client = make_client()
        local = []
        try:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= jobs:
                        break
                    counter["next"] = index + 1
                spec = specs[index % len(specs)]
                start = time.perf_counter()
                try:
                    (job_id,) = client.submit([spec])
                    payload = client.result(job_id)
                    assert _units(payload), payload
                except Exception as exc:  # noqa: BLE001 - recorded, gated
                    with lat_lock:
                        errors.append(repr(exc))
                    continue
                local.append(time.perf_counter() - start)
        finally:
            client.close()
        with lat_lock:
            latencies.extend(local)
            done.append(len(local))

    start = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    completed = sum(done)
    return {
        "jobs": jobs,
        "completed": completed,
        "errors": len(errors),
        "error_sample": errors[:3],
        "elapsed_seconds": round(elapsed, 3),
        "jobs_per_second": round(completed / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(1000 * _percentile(latencies, 0.50), 3),
        "p99_ms": round(1000 * _percentile(latencies, 0.99), 3),
    }


def _warm_through(client, result_of, specs):
    """Drive the distinct mix through once; returns label->assembly."""
    ids = client.submit(specs)
    assemblies = {}
    for job_id in ids:
        assemblies.update(_units(result_of(client, job_id)))
    return assemblies


# -- topologies ----------------------------------------------------------------


def _run_blocking(specs, jobs, threads):
    from repro.service import CompilationEngine, ResultStore, ServiceServer

    engine = CompilationEngine(workers=2, store=ResultStore(None))
    server = ServiceServer(engine)
    server.start()
    try:
        warm_client = _LegacyClient(server.url)
        assemblies = _warm_through(
            warm_client, lambda c, i: c.result(i), specs
        )
        soak = _soak(lambda: _LegacyClient(server.url), specs, jobs, threads)
    finally:
        server.stop(drain=False)
    soak["topology"] = "blocking (pre-PR server + per-request client)"
    return soak, assemblies


def _run_fabric(node_count, specs, jobs, threads):
    from repro.fabric import FabricClient, FabricNode

    nodes = []
    try:
        for _ in range(node_count):
            peers = [nodes[0].url] if nodes else None
            node = FabricNode(workers=2, peers=peers, health_interval=0.5)
            node.start()
            nodes.append(node)
        seed_url = nodes[0].url
        warm_client = FabricClient(seed_url, timeout=30.0)
        assemblies = _warm_through(
            warm_client,
            lambda c, i: c.result(i, timeout=300.0),
            specs,
        )
        warm_client.close()
        soak = _soak(
            lambda: FabricClient(seed_url, timeout=30.0, shed_retries=2),
            specs,
            jobs,
            threads,
        )
    finally:
        for node in reversed(nodes):
            node.stop(drain=False)
    soak["topology"] = "fabric %d-node" % node_count
    return soak, assemblies


# -- shed behaviour ------------------------------------------------------------


def _run_shed_phase(burst=120, threads=4):
    from repro.fabric import FabricNode
    from repro.service import JobSpec, ServiceClient, ServiceOverloadError

    node = FabricNode(workers=1, max_queue=8)
    node.start()
    stats = {"shed": 0, "admitted": [], "retry_after": []}
    lock = threading.Lock()

    def worker(offset):
        # Burst-submit the whole quota first (no waiting — that is what
        # overruns the tiny queue), then await every admitted job.
        client = ServiceClient(node.url, timeout=30.0)
        pending = []
        try:
            for i in range(burst // threads):
                spec = JobSpec(
                    kind="sleep", seconds=0.05, seed=offset * 10_000 + i
                )
                start = time.perf_counter()
                try:
                    (job_id,) = client.submit([spec])
                except ServiceOverloadError as exc:
                    with lock:
                        stats["shed"] += 1
                        stats["retry_after"].append(exc.retry_after)
                    continue
                pending.append((job_id, start))
            for job_id, start in pending:
                client.result(job_id, timeout=60.0)
                with lock:
                    stats["admitted"].append(
                        time.perf_counter() - start
                    )
        finally:
            client.close()

    pool = [
        threading.Thread(target=worker, args=(n,)) for n in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    metrics = node.frontend.metrics
    node.stop(drain=False)
    admitted = stats["admitted"]
    return {
        "burst": burst,
        "max_queue": 8,
        "shed": stats["shed"],
        "shed_rate": round(stats["shed"] / burst, 3),
        "admitted": len(admitted),
        "admitted_p99_ms": round(
            1000 * _percentile(admitted, 0.99), 1
        ),
        "retry_after_min": min(stats["retry_after"], default=None),
        "retry_after_max": max(stats["retry_after"], default=None),
        "shed_backlog": metrics.shed_backlog,
        "shed_queue_full": metrics.shed_queue_full,
    }


# -- cold vs warm first compile ------------------------------------------------


def _first_compile(peers, spec):
    from repro.fabric import FabricClient, FabricNode

    start = time.perf_counter()
    node = FabricNode(workers=1, peers=peers)
    node.start()
    client = FabricClient(node.url, timeout=30.0)
    try:
        (job_id,) = client.submit([spec])
        payload = client.result(job_id, timeout=300.0)
        assert _units(payload)
        elapsed = time.perf_counter() - start
        return elapsed, node.corpus_source
    finally:
        client.close()
        node.stop(drain=False)


def _run_cold_vs_warm():
    from repro.fabric import FabricClient, FabricNode

    # A probe compile nobody has cached (fresh seed): both nodes do the
    # same real compile; the delta is corpus compilation vs shipping.
    probe = _specs(seeds=(7001,))[:1]
    cold_seconds, cold_source = _first_compile(None, probe[0])

    donor = FabricNode(workers=1)
    donor.start()
    try:
        client = FabricClient(donor.url, timeout=30.0)
        (job_id,) = client.submit(_specs(seeds=(7002,))[:1])
        client.result(job_id, timeout=300.0)  # donor now has the corpus
        client.close()
        warm_probe = _specs(seeds=(7003,))[:1]
        warm_seconds, warm_source = _first_compile(
            [donor.url], warm_probe[0]
        )
    finally:
        donor.stop(drain=False)
    return {
        "cold_first_compile_seconds": round(cold_seconds, 3),
        "cold_corpus_source": cold_source,
        "warm_first_compile_seconds": round(warm_seconds, 3),
        "warm_corpus_source": warm_source,
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds
        else None,
        "note": (
            "the default axiom corpus currently compiles in ~10ms, so "
            "the boot+first-compile delta is within noise; the gated "
            "claim is the shipping mechanism (corpus_source=shipped), "
            "and the latency pair is recorded to catch it regressing "
            "as the corpus grows"
        ),
    }


# -- the benchmark -------------------------------------------------------------


def test_fabric_soak(report):
    distinct = _specs(seeds=(0, 1))  # 6 distinct fingerprints, hot mix

    runs = {}
    assemblies = {}
    if "blocking" in PROFILES:
        runs["blocking"], assemblies["blocking"] = _run_blocking(
            distinct, JOBS, THREADS
        )
    if "fabric1" in PROFILES:
        runs["fabric1"], assemblies["fabric1"] = _run_fabric(
            1, distinct, JOBS, THREADS
        )
    if "fabric3" in PROFILES:
        runs["fabric3"], assemblies["fabric3"] = _run_fabric(
            3, distinct, JOBS, THREADS
        )

    reference = next(iter(assemblies.values()))
    identical = all(a == reference for a in assemblies.values())

    shed = _run_shed_phase()
    cold_warm = _run_cold_vs_warm()

    speedup = None
    fabric1_speedup = None
    if "blocking" in runs and "fabric3" in runs:
        base = runs["blocking"]["jobs_per_second"]
        speedup = (
            round(runs["fabric3"]["jobs_per_second"] / base, 2)
            if base
            else None
        )
    if "blocking" in runs and "fabric1" in runs:
        base = runs["blocking"]["jobs_per_second"]
        fabric1_speedup = (
            round(runs["fabric1"]["jobs_per_second"] / base, 2)
            if base
            else None
        )
    fabric_ratio = None
    if "fabric1" in runs and "fabric3" in runs:
        base = runs["fabric1"]["jobs_per_second"]
        fabric_ratio = (
            round(runs["fabric3"]["jobs_per_second"] / base, 2)
            if base
            else None
        )

    result = {
        "workloads": WORKLOADS,
        "jobs": JOBS,
        "threads": THREADS,
        "cpus": os.cpu_count(),
        "soak": runs,
        "assembly_identical_across_topologies": identical,
        "shed_phase": shed,
        "cold_vs_warm": cold_warm,
        "fabric3_vs_blocking_speedup": speedup,
        "fabric1_vs_blocking_speedup": fabric1_speedup,
        "fabric3_vs_fabric1_ratio_ungated": fabric_ratio,
    }
    with open(os.path.join(output_dir(), "bench_fabric.json"), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    lines = [
        "topology            jobs  done   jobs/s    p50ms    p99ms  err",
    ]
    for key in ("blocking", "fabric1", "fabric3"):
        if key not in runs:
            continue
        entry = runs[key]
        lines.append(
            "%-18s %5d %5d %8.1f %8.2f %8.2f %4d"
            % (
                key,
                entry["jobs"],
                entry["completed"],
                entry["jobs_per_second"],
                entry["p50_ms"],
                entry["p99_ms"],
                entry["errors"],
            )
        )
    lines.append(
        "shed: %d/%d shed (%.0f%%), admitted p99 %.0fms, Retry-After [%s, %s]"
        % (
            shed["shed"],
            shed["burst"],
            100 * shed["shed_rate"],
            shed["admitted_p99_ms"],
            shed["retry_after_min"],
            shed["retry_after_max"],
        )
    )
    lines.append(
        "first compile: cold %.1fs vs warm(shipped) %.1fs (%.2fx)"
        % (
            cold_warm["cold_first_compile_seconds"],
            cold_warm["warm_first_compile_seconds"],
            cold_warm["speedup"] or 0.0,
        )
    )
    if speedup is not None:
        lines.append(
            "fabric 3-node vs blocking baseline: %.2fx "
            "(gate >= 2.5x with >= 4 cores, >= 1.5x on fewer)" % speedup
        )
    if fabric1_speedup is not None:
        lines.append(
            "fabric 1-node vs blocking baseline: %.2fx  (gate >= 2.0x)"
            % fabric1_speedup
        )
    if fabric_ratio is not None:
        lines.append(
            "fabric 3-node vs 1-node: %.2fx on %d CPU(s) (ungated)"
            % (fabric_ratio, os.cpu_count() or 1)
        )
    report("fabric soak (%d jobs, %d threads)" % (JOBS, THREADS),
           "\n".join(lines))

    _write_summary(result)

    # Always-on gates: correctness of what actually ran.
    assert identical, "assembly diverged across topologies"
    for entry in runs.values():
        assert entry["errors"] == 0, entry
        assert entry["completed"] == entry["jobs"], entry
    assert shed["shed"] > 0, "tiny max-queue burst must shed"
    assert shed["admitted"] + shed["shed"] == shed["burst"]
    assert 1 <= shed["retry_after_min"] <= shed["retry_after_max"] <= 30
    assert shed["admitted_p99_ms"] <= 10_000
    assert cold_warm["warm_corpus_source"] == "shipped"
    assert cold_warm["cold_corpus_source"] == "cold"

    # Throughput gates: only meaningful on the full matrix.  The
    # headline 2.5x 3-node claim needs cores for three nodes plus the
    # driver; on fewer, gate what one CPU can legitimately show.
    if FULL_RUN:
        assert fabric1_speedup is not None and fabric1_speedup >= 2.0, (
            "fabric 1-node must beat the pre-PR stack >= 2x, got %r"
            % fabric1_speedup
        )
        floor = 2.5 if (os.cpu_count() or 1) >= 4 else 1.5
        assert speedup is not None and speedup >= floor, (
            "fabric 3-node must beat the pre-PR stack >= %.1fx on "
            "%d CPU(s), got %r" % (floor, os.cpu_count() or 1, speedup)
        )
        assert (
            runs["fabric3"]["p99_ms"] <= runs["blocking"]["p99_ms"] / 2
        ), "fabric soak p99 must at least halve the blocking stack's"


def _write_summary(result):
    """The repo-root BENCH_fabric.json trajectory entry (full runs)."""
    if not FULL_RUN:
        return
    root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    summary = {
        "bench": "fabric soak: sharded nodes vs pre-PR blocking stack",
        "jobs": result["jobs"],
        "threads": result["threads"],
        "cpus": result["cpus"],
        "jobs_per_second": {
            key: entry["jobs_per_second"]
            for key, entry in result["soak"].items()
        },
        "p99_ms": {
            key: entry["p99_ms"] for key, entry in result["soak"].items()
        },
        "fabric3_vs_blocking_speedup": result[
            "fabric3_vs_blocking_speedup"
        ],
        "fabric1_vs_blocking_speedup": result[
            "fabric1_vs_blocking_speedup"
        ],
        "fabric3_vs_fabric1_ratio_ungated": result[
            "fabric3_vs_fabric1_ratio_ungated"
        ],
        "shed_rate": result["shed_phase"]["shed_rate"],
        "cold_vs_warm_first_compile": {
            "cold_seconds": result["cold_vs_warm"][
                "cold_first_compile_seconds"
            ],
            "warm_seconds": result["cold_vs_warm"][
                "warm_first_compile_seconds"
            ],
            "speedup": result["cold_vs_warm"]["speedup"],
        },
        "assembly_identical": result[
            "assembly_identical_across_topologies"
        ],
        "note": (
            "soak is store-hit dominated (request-path bound); on a "
            "1-CPU runner the 3-node fabric shares one core, so the "
            "gated comparison is against the pre-PR blocking stack, "
            "not fabric1"
        ),
    }
    with open(os.path.join(root, "BENCH_fabric.json"), "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
