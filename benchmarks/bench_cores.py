"""Flat-core SAT/e-graph kernels vs the pre-refactor object graph.

The flat-core refactor rebuilt the hot kernels under ``sat/`` and
``egraph/`` on struct-of-arrays storage: the CDCL core keeps clauses in
one literal arena with inline watch slots and assignments in a flat
value array, the union-find and hashcons run over parallel int arrays,
and the canonical (lex-least) model is produced by a fused
decision+propagation sweep that runs *first*, skipping the historical
heuristic-then-canonical double solve whenever it is conclusive.

Measured here, per workload, on the production configuration
(incremental matching, incremental solver, saturation cache off,
verify off):

* **median end-to-end ms** and **median SAT-stage ms** per sweep over
  repeated warm compiles, for the incremental-solver path and the
  from-scratch solver path.  Each path is measured in its own
  contiguous block (interleaving cross-pollutes allocator state enough
  to skew vs-baseline ratios);
* **flat-core telemetry**: peak literal-arena bytes, watch/arena
  compaction counts and snapshot copy traffic, from the session stats
  cache;
* **byte-identical assembly** between the two solver paths — the
  refactor's regression gate that the canonical decode is
  heuristic-independent.

Acceptance is measured against the *pre-refactor* main (commit
bb1f6f6), whose end-to-end medians were recorded with this exact
config and are committed in ``BENCH_saturation.json``: >= 2x
end-to-end on checksum and >= 1.5x end-to-end on the fig2 + byteswap4
+ checksum suite, byte-identical assembly.  The ratios are asserted
only when the full suite is measured (``BENCH_CORES_WORKLOADS``
restricts the run); the byte-identity assertion always runs.

Results land in ``benchmarks/out/bench_cores.json``; the repo-root
``BENCH_cores.json`` summary tracks the trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
WORKLOADS = ["fig2.dn", "byteswap4.dn", "checksum.dn"]
SUITE = ("fig2.dn", "byteswap4.dn", "checksum.dn")
REPEATS = {"fig2.dn": 25, "byteswap4.dn": 9, "checksum.dn": 5}

MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500

# End-to-end medians (incremental path) measured at the pre-refactor
# main (commit bb1f6f6) with this exact config, on the machine that
# produced the committed BENCH_saturation.json.
PRE_REFACTOR_MS = {
    "fig2.dn": 4.232,
    "byteswap4.dn": 417.656,
    "checksum.dn": 1312.66,
}


def _selected_workloads():
    env = os.environ.get("BENCH_CORES_WORKLOADS")
    if not env:
        return list(WORKLOADS)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, incremental_solver):
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=MIN_CYCLES,
        max_cycles=MAX_CYCLES,
        strategy=SearchStrategy.LINEAR,
        verify=False,
        enable_saturation_cache=False,
        enable_incremental_solver=incremental_solver,
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS,
            max_enodes=MAX_ENODES,
            incremental_match=True,
        ),
    )
    den = Denali(
        ev6(), axioms=axioms, registry=prog.registry, config=config
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _sweep(den, gmas, stage_stats):
    """One full compile sweep; returns (sat_stage_s, total_s, stats)."""
    del stage_stats[:]
    start = time.perf_counter()
    for label, gma in gmas:
        den.compile_gma(gma, label=label)
    total = time.perf_counter() - start
    sat = sum(s.timings.get("sat", 0.0) for s in stage_stats)
    return sat, total, list(stage_stats)


def _flat_telemetry(collected):
    """Aggregate the flat-core counters over one sweep's sessions."""
    totals = {
        "solver_arena_bytes_peak": 0,
        "solver_watch_compactions": 0,
        "solver_arena_compactions": 0,
        "snapshot_copy_bytes": 0,
    }
    for stats in collected:
        cache = getattr(stats, "cache", None) or {}
        arena = int(cache.get("solver_arena_bytes", 0) or 0)
        if arena > totals["solver_arena_bytes_peak"]:
            totals["solver_arena_bytes_peak"] = arena
        for key in (
            "solver_watch_compactions",
            "solver_arena_compactions",
            "snapshot_copy_bytes",
        ):
            totals[key] += int(cache.get(key, 0) or 0)
    return totals


def _measure(path, repeats, stage_stats):
    """Warm contiguous-block medians for the two solver paths."""
    den_inc, gmas = _build(path, True)
    den_scr, _ = _build(path, False)
    asm_inc, asm_scr = [], []
    for label, gma in gmas:  # warm: axiom corpus, compiled triggers
        r_inc = den_inc.compile_gma(gma, label=label)
        r_scr = den_scr.compile_gma(gma, label=label)
        assert r_inc.schedule is not None, "%s found no schedule" % label
        assert r_scr.schedule is not None, "%s found no schedule" % label
        asm_inc.append(r_inc.assembly)
        asm_scr.append(r_scr.assembly)
    sat_inc, tot_inc, tot_scr = [], [], []
    telemetry = None
    for i in range(repeats):
        s, t, collected = _sweep(den_inc, gmas, stage_stats)
        sat_inc.append(s)
        tot_inc.append(t)
        if i == 0:
            telemetry = _flat_telemetry(collected)
    for i in range(repeats):
        _, t, _ = _sweep(den_scr, gmas, stage_stats)
        tot_scr.append(t)
    return {
        "gmas": len(gmas),
        "sat_inc_ms": 1000 * statistics.median(sat_inc),
        "total_inc_ms": 1000 * statistics.median(tot_inc),
        "total_scratch_ms": 1000 * statistics.median(tot_scr),
        "assembly_identical": asm_inc == asm_scr,
        "telemetry": telemetry,
    }


def test_flat_cores(report, stage_stats):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        path = os.path.join(WORKLOAD_DIR, name)
        measured = _measure(path, REPEATS.get(name, 5), stage_stats)
        pre = PRE_REFACTOR_MS.get(name)
        entry = {
            "workload": name,
            "repeats": REPEATS.get(name, 5),
            "gmas": measured["gmas"],
            "sat_stage_ms": round(measured["sat_inc_ms"], 3),
            "end_to_end_ms": {
                "incremental": round(measured["total_inc_ms"], 3),
                "scratch": round(measured["total_scratch_ms"], 3),
                "pre_refactor": pre,
            },
            "end_to_end_speedup_vs_pre_refactor": round(
                pre / measured["total_inc_ms"], 3
            )
            if pre
            else None,
            "assembly_identical": measured["assembly_identical"],
            "flat_cores": measured["telemetry"],
        }
        entries.append(entry)

    suite = [e for e in entries if e["workload"] in SUITE]
    suite_complete = {e["workload"] for e in suite} == set(SUITE)
    suite_speedup = None
    if suite_complete:
        pre_total = sum(PRE_REFACTOR_MS[e["workload"]] for e in suite)
        inc_total = sum(e["end_to_end_ms"]["incremental"] for e in suite)
        suite_speedup = round(pre_total / inc_total, 3)

    result = {
        "workloads": [e["workload"] for e in entries],
        "strategy": "linear",
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "suite": {
            "workloads": list(SUITE),
            "complete": suite_complete,
            "end_to_end_speedup_vs_pre_refactor": suite_speedup,
        },
    }
    with open(
        os.path.join(output_dir(), "bench_cores.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # The repo-root summary tracks the flat-core trajectory across PRs.
    # Partial runs merge: they refresh the workloads they measured and
    # touch the suite speedup only when the whole suite ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_cores.json")
    summary = {
        "bench": "flat struct-of-arrays SAT/e-graph cores vs pre-refactor",
        "pre_refactor_end_to_end_ms": PRE_REFACTOR_MS,
        "suite": {
            "workloads": list(SUITE),
            "complete": False,
            "end_to_end_speedup_vs_pre_refactor": None,
        },
        "median_ms": {},
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["median_ms"][e["workload"]] = {
            "sat_stage": e["sat_stage_ms"],
            "end_to_end": e["end_to_end_ms"],
            "end_to_end_speedup_vs_pre_refactor": e[
                "end_to_end_speedup_vs_pre_refactor"
            ],
            "flat_cores": e["flat_cores"],
        }
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE),
            "complete": True,
            "end_to_end_speedup_vs_pre_refactor": suite_speedup,
        }
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      gmas  sat ms   e2e inc  e2e scratch  pre-ref  "
        "vs pre  identical  arena KiB",
    ]
    for e in entries:
        flat = e["flat_cores"] or {}
        lines.append(
            "%-12s  %4d  %6.1f   %7.1f   %9.1f   %7.1f  %5.2fx  %-9s  %d"
            % (
                e["workload"],
                e["gmas"],
                e["sat_stage_ms"],
                e["end_to_end_ms"]["incremental"],
                e["end_to_end_ms"]["scratch"],
                e["end_to_end_ms"]["pre_refactor"] or 0.0,
                e["end_to_end_speedup_vs_pre_refactor"] or 0.0,
                e["assembly_identical"],
                flat.get("solver_arena_bytes_peak", 0) // 1024,
            )
        )
    if suite_speedup is not None:
        lines.append(
            "suite (%s): %.2fx end-to-end vs pre-refactor"
            % (" + ".join(e["workload"] for e in suite), suite_speedup)
        )
    report(
        "flat-core solver paths vs pre-refactor (warm, verify off, "
        "saturation cache off)",
        "\n".join(lines),
    )

    for e in entries:
        assert e["assembly_identical"], (
            "%s: incremental and from-scratch solver paths emitted "
            "different assembly" % e["workload"]
        )
    if suite_complete:
        checksum = next(
            e for e in entries if e["workload"] == "checksum.dn"
        )
        assert checksum["end_to_end_speedup_vs_pre_refactor"] >= 2.0, (
            "checksum end-to-end speedup %.2fx < 2x vs pre-refactor"
            % checksum["end_to_end_speedup_vs_pre_refactor"]
        )
        assert suite_speedup >= 1.5, (
            "fig2 + byteswap4 + checksum end-to-end speedup %.2fx < 1.5x "
            "vs pre-refactor" % suite_speedup
        )
