"""E1 — byteswap4 (paper section 8, Figures 3 and 4).

Paper: "Our prototype takes just over a minute to generate code for this
problem.  Less than 0.3 seconds is spent in the SAT solver. ... The 5-cycle
EV6 code generated is shown in Figure 4. ... To the best of our knowledge,
this five cycle program is optimal."

Reproduced claims: the generated program takes 5 cycles, 4 cycles are
refuted (optimality), the code verifies against the reference semantics,
and SAT time is a small fraction of total compile time.
"""

from repro import Denali, ev6
from repro.sat import CdclSolver
from repro.encode import encode_schedule
from repro.sim import simulate_timing
from repro.util import format_table

from benchmarks.conftest import byteswap_goal, default_config


def _compile():
    den = Denali(ev6(), config=default_config(max_cycles=7, min_cycles=4))
    return den.compile_term(byteswap_goal(4))


def test_byteswap4_five_cycles(report, benchmark):
    result = _compile()
    assert result.cycles == 5
    assert result.optimal  # K=4 refuted
    assert result.verified
    assert simulate_timing(result.schedule, ev6()).ok

    sat_time = sum(p.time_seconds for p in result.search.probes)

    # Benchmark the expensive kernel: the SAT probe at the optimal budget.
    eg = result.egraph
    enc = encode_schedule(eg, ev6(), result.goal_classes, 5)

    def solve():
        return CdclSolver().solve(enc.cnf).satisfiable

    assert benchmark(solve) is True

    rows = [
        ["cycles of generated code", "5", str(result.cycles)],
        ["4-cycle budget refuted (optimal)", "yes", "yes" if result.optimal else "no"],
        ["instructions emitted", "8 (+1 unused)", str(result.schedule.instruction_count())],
        ["independently verified", "correct by design", "yes" if result.verified else "NO"],
        ["total compile time", "~60 s (667MHz Alpha, C/Java)", "%.1f s (Python)" % result.elapsed_seconds],
        ["SAT share of compile time", "< 0.3 s / ~60 s", "%.2f s / %.1f s" % (sat_time, result.elapsed_seconds)],
    ]
    report(
        "E1 byteswap4 (paper Fig. 3/4)",
        format_table(["quantity", "paper", "measured"], rows)
        + "\n\n"
        + result.schedule.render_quad(ev6(), label="byteswap4"),
    )
