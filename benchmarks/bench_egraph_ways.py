"""E6 — AC matching finds >100 ways of computing a+b+c+d+e (paper section 5).

Paper: "Denali's matcher uses the commutativity and associativity of
addition to find more than a hundred different ways of computing
a + b + c + d + e. ... an E-graph of size O(n) can represent Theta(2^n)
distinct ways of computing a term of size n."

Reproduced claims: saturating the AC axioms over the five-term sum yields
well over one hundred distinct derivations in a graph of only a few
hundred enodes, and the count grows explosively with the number of terms
while the graph stays polynomial.
"""

from repro import EGraph, default_registry, inp, mk
from repro.axioms import math_axioms
from repro.egraph.analysis import count_ways
from repro.matching import SaturationConfig, saturate
from repro.util import format_table


def _sum_graph(n: int):
    reg = default_registry()
    eg = EGraph()
    term = inp("v0")
    for i in range(1, n):
        term = mk("add64", term, inp("v%d" % i))
    goal = eg.add_term(term)
    axioms = math_axioms(reg).relevant_to({"add64"})
    stats = saturate(
        eg, axioms, reg, SaturationConfig(max_rounds=20, max_enodes=8000)
    )
    return eg, goal, stats


def test_ways_of_computing_sum(report, benchmark):
    results = {}
    for n in (3, 4, 5):
        eg, goal, stats = _sum_graph(n)
        results[n] = (count_ways(eg, goal), stats.enodes, stats.quiescent)

    ways5, enodes5, quiescent5 = results[5]
    assert quiescent5
    assert ways5 > 100  # the paper's headline number
    # Explosive growth in ways, polynomial growth in graph size.
    assert results[4][0] > results[3][0] * 3
    assert results[5][0] > results[4][0] * 3
    assert enodes5 < 1000

    benchmark(lambda: _sum_graph(5)[2].enodes)

    rows = [
        [
            "a+b+c (n=3)",
            "-",
            "%d ways in %d enodes" % (results[3][0], results[3][1]),
        ],
        [
            "a+b+c+d (n=4)",
            "-",
            "%d ways in %d enodes" % (results[4][0], results[4][1]),
        ],
        [
            "a+b+c+d+e (n=5)",
            "more than a hundred ways",
            "%d ways in %d enodes" % (ways5, enodes5),
        ],
    ]
    report(
        "E6 ways of computing a 5-term sum under AC matching",
        format_table(["sum", "paper", "measured"], rows),
    )
