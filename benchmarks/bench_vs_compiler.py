"""E3 — Denali vs. the production compiler (paper section 8).

Paper: "With some effort, we were able to coax the production C compiler
to tie this result [5 cycles for byteswap4], giving it aggressive switches
(-fast -arch ev6), and helpful input ... For the 5-byte swap problem,
Denali does one cycle better than the C compiler."

Reproduced claims (shape): the conventional compiler, even fed the paper's
helpful shift-and-mask source, never beats Denali; on byteswap5 Denali is
strictly faster.  (Our rewriting-based baseline is weaker than Compaq's
compiler, so Denali's margins are larger here; who-wins is preserved.)
Both code sequences are measured by the same EV6 timing model and executed
on the same functional simulator.
"""

from repro import Denali, GMA, const, ev6, inp, mk
from repro.baselines import compile_conventional
from repro.sim import execute_schedule, simulate_timing
from repro.util import format_table

from benchmarks.conftest import byteswap_goal, default_config


def helpful_source(n: int):
    """The shift-and-or idiom the paper fed the C compiler."""
    a = inp("a")
    parts = []
    for i in range(n):
        byte = mk("and64", mk("srl", a, const(8 * i)), const(0xFF))
        parts.append(mk("sll", byte, const(8 * (n - 1 - i))))
    out = parts[0]
    for p in parts[1:]:
        out = mk("bis", out, p)
    return out


def _denali(n: int):
    den = Denali(ev6(), config=default_config(max_cycles=6 + n // 4, min_cycles=3))
    return den.compile_term(byteswap_goal(n))


def _conventional(n: int):
    sched = compile_conventional(GMA(("\\res",), (helpful_source(n),)), ev6())
    assert simulate_timing(sched, ev6()).ok
    return sched


def test_byteswap_vs_compiler(report, benchmark):
    rows = []
    paper_rows = {4: "tie at 5 cycles", 5: "Denali wins by 1 cycle"}
    outputs_agree = True
    margins = {}
    for n in (4, 5):
        denali = _denali(n)
        conventional = _conventional(n)
        assert denali.verified
        assert denali.cycles <= conventional.cycles
        margins[n] = conventional.cycles - denali.cycles

        # Both codes compute the same function (spot-check on the simulator).
        for a in (0x0102030405060708, 0xDEADBEEFCAFEF00D, 0, (1 << 64) - 1):
            s1 = execute_schedule(denali.schedule, {"a": a})
            s2 = execute_schedule(conventional, {"a": a})
            v1 = s1.read(denali.schedule.goal_operands[0].register)
            v2 = s2.read(conventional.goal_operands[0].register)
            outputs_agree = outputs_agree and (v1 == v2)

        rows.append(
            [
                "byteswap%d" % n,
                paper_rows[n],
                "Denali %d cyc vs conventional %d cyc"
                % (denali.cycles, conventional.cycles),
            ]
        )
    assert outputs_agree
    assert margins[5] >= 1  # Denali strictly wins on byteswap5

    benchmark(lambda: _conventional(5).cycles)

    report(
        "E3 Denali vs. conventional compiler (byteswap4/5, helpful source)",
        format_table(["problem", "paper", "measured"], rows),
    )
