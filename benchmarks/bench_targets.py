"""Multi-target bench: the rv64 backend vs the ev6 baseline.

ISSUE 10 lifts the Alpha/EV6 monoculture into a declarative target
layer (``repro.isa.targets``) and ships RISC-V RV64 as a second real
ISA.  This bench is the end-to-end gate for that claim, per workload of
the ``benchmarks/workloads`` suite:

* **shared timing suite** (``fig2.dn``, ``checksum.dn``) — both targets
  compile the same source under the same budgets; wall-clock is
  measured interleaved so machine-load drift lands on both streams.
  Acceptance: every unit verified and deterministic on both targets,
  and the rv64 suite total stays <= ``RV64_SLOWDOWN_CEILING`` (1.15x)
  of the ev6 total.
* **byteswap4.dn** — an rv64 *quality* entry, outside the timing
  ratio.  The workload is EV6 home turf (its goal is literally
  ``storeb``/``selectb`` byte surgery); rv64 still compiles it to a
  verified, optimal 7-cycle schedule, but only under a pinned budget
  (``max_enodes=600``, cycle window 7..8).  At looser budgets the
  canonical lex-least model decode — not saturation, not CNF size —
  blows up on the 2-wide machine: the false-first DFS takes thousands
  of conflicts with very large learned clauses (66s+ per probe, and
  *worse* with looser cycle budgets).  A warm-start experiment
  (heuristic presolve, then the canonical sweep over the learned DB)
  did not help, so the cost is inherent to the lex-least sweep on this
  instance shape; the bench pins the budget and records the honest
  wall-clock instead of hiding it.  ``BENCH_TARGETS_SKIP_BYTESWAP=1``
  skips this entry (the CI smoke job does — it costs ~a minute).

``mulchain.dn`` is deliberately *not* in the shared suite: under the
shared budgets ev6 finds no schedule within 10 cycles (mulq latency 7)
while rv64's 3-cycle multiplier fits in 8 — there is no common timing
baseline to compare against.

Results land in ``benchmarks/out/bench_targets.json``; the repo-root
``BENCH_targets.json`` summary tracks the trajectory across PRs.
``BENCH_TARGETS_WORKLOADS=fig2.dn`` restricts the shared suite (CI
smoke); the suite-level ratio gate applies only to complete runs, while
the per-unit verified/deterministic invariants always apply.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
SUITE_SHARED = ("fig2.dn", "checksum.dn")
REPEATS = {"fig2.dn": 15, "checksum.dn": 3}
TARGETS = ("ev6", "rv64")

MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500
SEED = 20020617
RV64_SLOWDOWN_CEILING = 1.15

# byteswap4 rv64 budget: see the module docstring.
BYTESWAP_MIN, BYTESWAP_MAX = 7, 8
BYTESWAP_ENODES = 600


def _selected_workloads():
    env = os.environ.get("BENCH_TARGETS_WORKLOADS")
    if not env:
        return list(SUITE_SHARED)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, target, lo=MIN_CYCLES, hi=MAX_CYCLES, enodes=MAX_ENODES):
    from repro.axioms import AxiomSet, default_axiom_corpus
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa.targets import get_target
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = default_axiom_corpus(prog.registry, target) + AxiomSet(
        prog.axioms, "program"
    )
    config = DenaliConfig(
        min_cycles=lo,
        max_cycles=hi,
        strategy=SearchStrategy.LINEAR,
        seed=SEED,
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS, max_enodes=enodes
        ),
    )
    den = Denali(
        get_target(target).spec(),
        axioms=axioms,
        registry=prog.registry,
        config=config,
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _compile_all(den, gmas):
    """Compile every gma; return [(label, cycles, rendered asm)]."""
    units = []
    for label, gma in gmas:
        res = den.compile_gma(gma, label=label)
        assert res.schedule is not None, "%s found no schedule" % label
        assert res.verified, label
        units.append((label, res.cycles, res.schedule.render()))
    return units


def _measure(path, repeats):
    """Per-target quality + interleaved median seconds per compile."""
    pipelines = {t: _build(path, t) for t in TARGETS}
    units = {}
    for target, (den, gmas) in pipelines.items():
        first = _compile_all(den, gmas)
        second = _compile_all(den, gmas)
        assert first == second, (
            "%s nondeterministic on %s" % (target, path)
        )
        units[target] = first
    times = {t: [] for t in TARGETS}
    for _ in range(repeats):
        for target, (den, gmas) in pipelines.items():
            n = len(gmas)
            start = time.perf_counter()
            for label, gma in gmas:
                den.compile_gma(gma, label=label)
            times[target].append((time.perf_counter() - start) / n)
    medians = {t: statistics.median(times[t]) for t in TARGETS}
    return medians, units


def _measure_byteswap_rv64():
    """The pinned-budget rv64 quality entry (see module docstring)."""
    path = os.path.join(WORKLOAD_DIR, "byteswap4.dn")
    den, gmas = _build(
        path, "rv64", lo=BYTESWAP_MIN, hi=BYTESWAP_MAX,
        enodes=BYTESWAP_ENODES,
    )
    start = time.perf_counter()
    units = []
    for label, gma in gmas:
        res = den.compile_gma(gma, label=label)
        assert res.schedule is not None, label
        assert res.verified and res.optimal, label
        assert res.cycles == BYTESWAP_MIN, (
            "expected the %d-cycle optimum, got %s"
            % (BYTESWAP_MIN, res.cycles)
        )
        units.append((label, res.cycles))
    elapsed = time.perf_counter() - start
    return {
        "workload": "byteswap4.dn",
        "target": "rv64",
        "cycles": {label: cyc for label, cyc in units},
        "max_enodes": BYTESWAP_ENODES,
        "cycle_window": [BYTESWAP_MIN, BYTESWAP_MAX],
        "seconds": round(elapsed, 2),
        "in_timing_ratio": False,
        "note": "canonical lex-least decode is pathological on the "
                "2-wide machine at looser budgets; pinned window",
    }


def test_targets_parity_and_overhead(report):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        path = os.path.join(WORKLOAD_DIR, name)
        medians, units = _measure(path, REPEATS.get(name, 3))
        entries.append(
            {
                "workload": name,
                "units": {
                    t: [
                        {"label": label, "cycles": cyc}
                        for label, cyc, _ in units[t]
                    ]
                    for t in TARGETS
                },
                "ev6_ms_per_compile": round(1000 * medians["ev6"], 3),
                "rv64_ms_per_compile": round(1000 * medians["rv64"], 3),
                "ratio_rv64_over_ev6": round(
                    medians["rv64"] / medians["ev6"], 3
                ),
            }
        )
        # The two backends must genuinely diverge in emitted code.
        assert units["ev6"] != units["rv64"], name

    byteswap = None
    if os.environ.get("BENCH_TARGETS_SKIP_BYTESWAP") != "1":
        byteswap = _measure_byteswap_rv64()

    suite_complete = {e["workload"] for e in entries} == set(SUITE_SHARED)
    suite_ratio = None
    if entries:
        ev6_total = sum(e["ev6_ms_per_compile"] for e in entries)
        rv64_total = sum(e["rv64_ms_per_compile"] for e in entries)
        suite_ratio = round(rv64_total / ev6_total, 3)

    result = {
        "targets": list(TARGETS),
        "strategy": "linear",
        "seed": SEED,
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "byteswap4_rv64": byteswap,
        "suite": {
            "workloads": list(SUITE_SHARED),
            "complete": suite_complete,
            "ratio_rv64_over_ev6": suite_ratio,
            "ceiling": RV64_SLOWDOWN_CEILING,
        },
    }
    with open(
        os.path.join(output_dir(), "bench_targets.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # Repo-root summary, merged across partial runs like the other
    # BENCH_*.json files: partial runs refresh their workloads, the
    # suite record only changes when the whole shared suite ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_targets.json")
    summary = {
        "bench": "rv64 backend vs ev6 baseline (shared workload suite)",
        "suite": {
            "workloads": list(SUITE_SHARED),
            "complete": False,
            "ratio_rv64_over_ev6": None,
            "ceiling": RV64_SLOWDOWN_CEILING,
        },
        "per_workload": {},
        "byteswap4_rv64": None,
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["per_workload"][e["workload"]] = {
            "ev6_ms": e["ev6_ms_per_compile"],
            "rv64_ms": e["rv64_ms_per_compile"],
            "ratio": e["ratio_rv64_over_ev6"],
            "cycles": {
                t: {u["label"]: u["cycles"] for u in e["units"][t]}
                for t in TARGETS
            },
        }
    if byteswap is not None:
        summary["byteswap4_rv64"] = byteswap
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE_SHARED),
            "complete": True,
            "ratio_rv64_over_ev6": suite_ratio,
            "ceiling": RV64_SLOWDOWN_CEILING,
        }
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      ev6 ms   rv64 ms   ratio",
    ]
    for e in entries:
        lines.append(
            "%-12s  %6.1f  %8.1f  %6.3f"
            % (
                e["workload"],
                e["ev6_ms_per_compile"],
                e["rv64_ms_per_compile"],
                e["ratio_rv64_over_ev6"],
            )
        )
    if suite_complete:
        lines.append(
            "shared suite: rv64/ev6 ratio %.3f (ceiling %.2f)"
            % (suite_ratio, RV64_SLOWDOWN_CEILING)
        )
    if byteswap is not None:
        lines.append(
            "byteswap4 rv64 (quality, not timed): %s cycles in %.1fs "
            "at max_enodes=%d"
            % (
                sorted(byteswap["cycles"].values()),
                byteswap["seconds"],
                byteswap["max_enodes"],
            )
        )
    report("multi-target: rv64 vs ev6 on the shared suite",
           "\n".join(lines))

    if suite_complete:
        assert suite_ratio <= RV64_SLOWDOWN_CEILING, (
            "rv64 too slow on the shared suite: ratio %.3f > %.2f"
            % (suite_ratio, RV64_SLOWDOWN_CEILING)
        )
