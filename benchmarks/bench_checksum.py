"""E5 — the packet checksum routine (paper section 8, Figures 5 and 6).

Paper: "Denali took about 4 hours to generate code for this program; the
code for the loop body consisted of 10 cycles and 31 instructions."

Reproduced claims: the Figure 6 program (program-local ``add``/``carry``
axioms, unrolled and software-pipelined loop) compiles end-to-end, the
loop body is proved optimal for its unroll factor, and the generated code
verifies.  We run the 2x-unrolled body as the benchmark default (pure
Python; the paper's 4x body is run by the example script) and report the
measured instruction and cycle counts next to the paper's 4x numbers.
"""

from repro import (
    AxiomSet,
    Denali,
    ev6,
    parse_program,
    translate_procedure,
)
from repro.axioms import alpha_axioms, constant_synthesis_axioms, math_axioms
from repro.util import format_table

from benchmarks.conftest import default_config

SOURCE = r"""
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
    (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
    (eq (carry a b) (\cmpult (\add64 a b) b))))
(\opdecl add (long long) long)
(\axiom (forall (a b c) (pats (add a (add b c)))
    (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b c) (pats (add (add a b) c))
    (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b) (pats (add a b))
    (eq (add a b) (add b a))))
(\axiom (forall (a b) (pats (add a b))
    (eq (add a b) (\add64 (\add64 a b) (carry a b)))))

(\procdecl checksum ((ptr (\ref long)) (ptrend (\ref long))) short
  (\var (sum long 0)
  (\var (v1 long (\deref ptr))
  (\semi
    (\unroll 2 (\do (-> (< ptr ptrend)
      (\semi
        (:= (sum (add sum v1)))
        (:= (ptr (+ ptr 8)))
        (:= (v1 (\deref ptr)))))))
    (:= (sum (+ (\selectw sum 0)
                (+ (\selectw sum 1)
                   (+ (\selectw sum 2) (\selectw sum 3))))))
    (:= (sum (+ (\selectw sum 0) (\selectw sum 1))))
    (:= (\res (\cast short sum)))))))
"""


def _compile_loop():
    program = parse_program(SOURCE)
    gmas = dict(
        translate_procedure(program.procedure("checksum"), program.registry)
    )
    axioms = (
        math_axioms(program.registry)
        + constant_synthesis_axioms(program.registry)
        + alpha_axioms(program.registry)
        + AxiomSet(program.axioms, "checksum-local")
    )
    cfg = default_config(min_cycles=6, max_cycles=10)
    cfg.saturation.max_rounds = 8
    cfg.saturation.max_enodes = 2500
    den = Denali(ev6(), axioms=axioms, registry=program.registry, config=cfg)
    return den.compile_gma(gmas["checksum.loop0"]), gmas


def test_checksum_loop_body(report, benchmark):
    result, gmas = _compile_loop()
    assert result.verified
    assert result.optimal
    assert result.cycles <= 8
    # The body must contain the carry-wraparound pattern: loads, adds and a
    # cmpult computing the carry.
    mnemonics = [i.mnemonic for i in result.schedule.instructions]
    assert mnemonics.count("ldq") == 2  # one load per unrolled iteration
    assert "cmpult" in mnemonics
    assert "addq" in mnemonics

    benchmark(lambda: _compile_loop()[0].cycles)

    rows = [
        ["unroll factor", "4 (hand-pipelined)", "2 (hand-pipelined)"],
        ["loop body instructions", "31", str(result.schedule.instruction_count())],
        ["loop body cycles", "10", str(result.cycles)],
        ["optimal for its E-graph", "near-optimal", "yes" if result.optimal else "no"],
        ["verified", "correct by design", "yes" if result.verified else "NO"],
        ["compile time", "~4 hours (667 MHz Alpha)", "%.1f s (Python)" % result.elapsed_seconds],
    ]
    report(
        "E5 checksum loop body (paper Fig. 5/6)",
        format_table(["quantity", "paper (unroll 4)", "measured (unroll 2)"], rows)
        + "\n\n" + result.assembly,
    )
