"""E11 — retargeting (paper section 1.1).

Paper: "We are currently making the changes necessary to target the Intel
Itanium architecture.  It appears that this shift will not require any
radical changes (and the changes will mostly be to the axioms)."

Reproduced claim: the same goal terms and the *same axiom files* compile
for a second, structurally different target (no byte-manipulation
instructions, different units/latencies, flat clusters) by swapping only
the architectural description — and the code generator exploits each
target's idioms (EV6 ``extbl``/``insbl`` vs. Itanium-style
shift-and-mask, ``s4addq`` vs. ``shladd``).
"""

from repro import Denali, const, ev6, inp, itanium_like, mk
from repro.util import format_table

from benchmarks.conftest import byteswap_goal, default_config


PROBLEMS = [
    ("reg6*4+1 (Fig. 2)",
     mk("add64", mk("mul64", inp("x"), const(4)), const(1)), 1, 6),
    ("a*16", mk("mul64", inp("a"), const(16)), 1, 6),
    ("byteswap2", byteswap_goal(2), 2, 7),
    ("byteswap3", byteswap_goal(3), 2, 8),
]


def _compile(term, spec, lo, hi):
    cfg = default_config(min_cycles=lo, max_cycles=hi)
    return Denali(spec, config=cfg).compile_term(term)


def test_retarget_itanium(report, benchmark):
    rows = []
    for name, term, lo, hi in PROBLEMS:
        alpha = _compile(term, ev6(), lo, hi)
        it = _compile(term, itanium_like(), lo, hi)
        assert alpha.verified and it.verified, name
        assert alpha.optimal and it.optimal, name
        rows.append(
            [
                name,
                "%d cyc (%s)" % (
                    alpha.cycles, alpha.schedule.instructions[0].mnemonic
                ) if alpha.schedule.instructions else "free",
                "%d cyc (%s)" % (
                    it.cycles, it.schedule.instructions[0].mnemonic
                ) if it.schedule.instructions else "free",
            ]
        )

    # Byte ops exist only on the Alpha; the Itanium-like code must not
    # reference them.
    it_bs = _compile(byteswap_goal(2), itanium_like(), 2, 7)
    mnemonics = {i.mnemonic for i in it_bs.schedule.instructions}
    assert mnemonics <= {"shl", "shr.u", "and", "or", "movl"}

    benchmark(
        lambda: _compile(PROBLEMS[0][1], itanium_like(), 1, 2).cycles
    )

    report(
        "E11 retargeting: same axioms, different architectural tables",
        format_table(["problem", "Alpha EV6", "Itanium-like"], rows)
        + "\npaper: 'the changes will mostly be to the axioms' — here the "
        "axioms did not change at all.",
    )
