"""The stochastic MCMC backend racing the exact SAT ladder.

ISSUE 7 adds a second search engine: a STOKE-style Metropolis–Hastings
sampler over straight-line schedules (``repro.stochastic``), and a
``race`` backend that runs it against the SAT ladder — first *verified*
schedule wins and cancels the loser.  The race must be close to free
when SAT is healthy, and must win outright where the ladder cannot
answer at all.

Measured here:

* **race overhead** — median ms/compile for ``backend="sat"`` vs
  ``backend="race"`` on the fig2 + byteswap4 + checksum suite
  (verification ON in both arms; a race only counts a contestant as a
  winner when its schedule verified).  Acceptance: the suite-level
  ratio ``sat / race`` is >= 0.95, i.e. racing costs at most ~5%.
  fig2's per-workload ratio is dominated by a fixed ~1 ms
  thread-spawn cost on a ~2 ms compile, so — as with
  ``bench_incremental`` — the gate is the suite total, with all
  per-workload medians reported.
* **beyond-ceiling win** — ``mulchain`` (two dependent ``mulq``) under
  a 6-cycle budget ceiling: every SAT probe is UNSAT, and the race is
  won by a *verified* stochastic schedule whose cycle count the exact
  path could never reach.

The two timing modes are interleaved (one sat sweep then one race sweep
per iteration) so machine-load drift lands on both streams.

Results land in ``benchmarks/out/bench_stochastic.json``; the repo-root
``BENCH_stochastic.json`` summary tracks the trajectory across PRs.
``BENCH_STOCHASTIC_WORKLOADS=fig2.dn`` restricts the run (the CI smoke
job does this); the >= 0.95 suite assertion applies only when the full
suite is measured, and the beyond-ceiling section runs only when
``mulchain.dn`` is selected (it always is by default).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
# The race-overhead suite: register-only (fig2, byteswap4 — the sampler
# actually races) plus checksum (memory targets, sampler declares
# itself unsupported and SAT runs unopposed — the gate still covers
# that dispatch overhead).
SUITE = ("fig2.dn", "byteswap4.dn", "checksum.dn")
BEYOND = "mulchain.dn"
WORKLOADS = list(SUITE) + [BEYOND]
REPEATS = {"fig2.dn": 25, "byteswap4.dn": 15, "checksum.dn": 5}

MIN_CYCLES, MAX_CYCLES = 1, 10
MAX_ROUNDS, MAX_ENODES = 8, 2500
BEYOND_MAX_CYCLES = 6  # two dependent mulqs need 14 — every probe UNSAT
SEED = 20020617
SUITE_RATIO_FLOOR = 0.95


def _selected_workloads():
    env = os.environ.get("BENCH_STOCHASTIC_WORKLOADS")
    if not env:
        return list(WORKLOADS)
    return [name.strip() for name in env.split(",") if name.strip()]


def _build(path, backend, max_cycles=MAX_CYCLES, stochastic=None):
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig
    from repro.stochastic.search import StochasticConfig

    with open(path) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=MIN_CYCLES,
        max_cycles=max_cycles,
        strategy=SearchStrategy.LINEAR,
        backend=backend,
        seed=SEED,
        stochastic=(
            stochastic if stochastic is not None else StochasticConfig()
        ),
        saturation=SaturationConfig(
            max_rounds=MAX_ROUNDS, max_enodes=MAX_ENODES
        ),
    )
    den = Denali(
        ev6(), axioms=axioms, registry=prog.registry, config=config
    )
    gmas = []
    for proc in prog.procedures:
        gmas.extend(translate_procedure(proc, prog.registry))
    return den, gmas


def _measure(path, repeats):
    """Median seconds per GMA compile, sat-only vs race, interleaved."""
    den_sat, gmas = _build(path, "sat")
    den_race, _ = _build(path, "race")
    winners = []
    for label, gma in gmas:  # warm: saturation cache, axiom corpus
        r_sat = den_sat.compile_gma(gma, label=label)
        r_race = den_race.compile_gma(gma, label=label)
        assert r_sat.schedule is not None, "%s found no schedule" % label
        assert r_race.schedule is not None, "%s found no schedule" % label
        assert r_sat.verified and r_race.verified, label
        assert r_race.cycles <= r_sat.cycles, (
            "%s: race lost cycles (%s > %s)"
            % (label, r_race.cycles, r_sat.cycles)
        )
        winners.append(r_race.winner)
    t_sat, t_race = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        for label, gma in gmas:
            den_sat.compile_gma(gma, label=label)
        t_sat.append((time.perf_counter() - start) / len(gmas))
        start = time.perf_counter()
        for label, gma in gmas:
            den_race.compile_gma(gma, label=label)
        t_race.append((time.perf_counter() - start) / len(gmas))
    return statistics.median(t_sat), statistics.median(t_race), winners


def _measure_beyond():
    """mulchain under a ceiling SAT cannot meet: the sampler must win."""
    from repro.stochastic.search import StochasticConfig

    path = os.path.join(WORKLOAD_DIR, BEYOND)
    den, gmas = _build(
        path,
        "race",
        max_cycles=BEYOND_MAX_CYCLES,
        stochastic=StochasticConfig(chains=2, moves=4000),
    )
    assert len(gmas) == 1
    label, gma = gmas[0]
    start = time.perf_counter()
    result = den.compile_gma(gma, label=label)
    elapsed = time.perf_counter() - start
    stochastic = result.stats.stochastic or {}
    return {
        "workload": BEYOND,
        "max_cycles": BEYOND_MAX_CYCLES,
        "winner": result.winner,
        "cycles": result.cycles,
        "verified": bool(result.verified),
        "sat_found_schedule": result.winner == "sat",
        "proposals": sum(
            c.get("proposals", 0) for c in stochastic.get("chains", [])
        ),
        "time_ms": round(1000 * elapsed, 1),
    }, result


def test_stochastic_race(report):
    selected = _selected_workloads()
    entries = []
    for name in selected:
        if name == BEYOND:
            continue
        path = os.path.join(WORKLOAD_DIR, name)
        repeats = REPEATS.get(name, 5)
        t_sat, t_race, winners = _measure(path, repeats)
        entries.append(
            {
                "workload": name,
                "repeats": repeats,
                "gmas": len(winners),
                "sat_ms_per_compile": round(1000 * t_sat, 3),
                "race_ms_per_compile": round(1000 * t_race, 3),
                "ratio_sat_over_race": round(t_sat / t_race, 3),
                "race_winners": sorted(set(winners)),
            }
        )

    suite = [e for e in entries if e["workload"] in SUITE]
    suite_complete = {e["workload"] for e in suite} == set(SUITE)
    suite_ratio = None
    if suite:
        sat_total = sum(e["sat_ms_per_compile"] for e in suite)
        race_total = sum(e["race_ms_per_compile"] for e in suite)
        suite_ratio = round(sat_total / race_total, 3)

    beyond = None
    if BEYOND in selected:
        beyond, beyond_result = _measure_beyond()

    result = {
        "workloads": selected,
        "strategy": "linear",
        "seed": SEED,
        "min_cycles": MIN_CYCLES,
        "max_cycles": MAX_CYCLES,
        "per_workload": entries,
        "suite": {
            "workloads": list(SUITE),
            "complete": suite_complete,
            "ratio_sat_over_race": suite_ratio,
        },
        "beyond_ceiling": beyond,
    }
    with open(
        os.path.join(output_dir(), "bench_stochastic.json"), "w"
    ) as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    # The repo-root summary CI commits so the trajectory is tracked
    # across PRs.  Partial runs (the CI fig2 smoke) merge into the
    # existing file: they refresh the workloads they measured and touch
    # the suite ratio / beyond-ceiling record only when they ran.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary_path = os.path.join(root, "BENCH_stochastic.json")
    summary = {
        "bench": "stochastic MCMC backend racing the SAT ladder",
        "suite": {
            "workloads": list(SUITE),
            "complete": False,
            "ratio_sat_over_race": None,
        },
        "median_ms_per_compile": {},
        "beyond_ceiling": None,
    }
    if os.path.exists(summary_path):
        try:
            with open(summary_path) as handle:
                summary.update(json.load(handle))
        except (OSError, ValueError):
            pass
    for e in entries:
        summary["median_ms_per_compile"][e["workload"]] = {
            "sat": e["sat_ms_per_compile"],
            "race": e["race_ms_per_compile"],
            "ratio_sat_over_race": e["ratio_sat_over_race"],
        }
    if suite_complete:
        summary["suite"] = {
            "workloads": list(SUITE),
            "complete": True,
            "ratio_sat_over_race": suite_ratio,
        }
    if beyond is not None:
        summary["beyond_ceiling"] = beyond
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    lines = [
        "workload      gmas  sat ms   race ms  ratio   race winners",
    ]
    for e in entries:
        lines.append(
            "%-12s  %4d  %6.1f   %6.1f   %5.3f   %s"
            % (
                e["workload"],
                e["gmas"],
                e["sat_ms_per_compile"],
                e["race_ms_per_compile"],
                e["ratio_sat_over_race"],
                "+".join(e["race_winners"]),
            )
        )
    if suite_ratio is not None:
        lines.append(
            "suite (%s): sat/race ratio %.3f (floor %.2f)"
            % (" + ".join(sorted(e["workload"] for e in suite)),
               suite_ratio, SUITE_RATIO_FLOOR)
        )
    if beyond is not None:
        lines.append(
            "beyond ceiling: %s @ <= %d cycles -> %s wins, %s cycles, "
            "verified=%s, %.0f ms"
            % (
                beyond["workload"],
                beyond["max_cycles"],
                beyond["winner"],
                beyond["cycles"],
                beyond["verified"],
                beyond["time_ms"],
            )
        )
    report("stochastic backend: race overhead + beyond-ceiling win",
           "\n".join(lines))

    if beyond is not None:
        assert beyond["winner"] == "stochastic", beyond
        assert beyond["verified"], beyond
        assert not beyond["sat_found_schedule"], beyond
        assert beyond["cycles"] > BEYOND_MAX_CYCLES, beyond
        assert beyond_result.schedule is not None
    if suite_complete:
        assert suite_ratio >= SUITE_RATIO_FLOOR, (
            "race overhead too high: sat/race ratio %.3f < %.2f"
            % (suite_ratio, SUITE_RATIO_FLOOR)
        )
