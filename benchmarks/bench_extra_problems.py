"""E8 — additional test problems: rowop, lcp2 and friends (paper section 8).

Paper: "In addition to the challenge problems above, we have used Denali
on a matrix routine rowop, and on the problem of the least common power of
2 of two registers (in addition to a number of problems we invented for
ourselves). ... these tests give us confidence that the Denali approach
can provide peak performance on ALU-bound register-to-register
computations."

Reproduced claims: each problem compiles, is proved optimal for its
E-graph, verifies, and matches or beats the conventional compiler on the
same EV6 timing model.
"""

from repro import Denali, GMA, Sort, const, ev6, inp, mk
from repro.baselines import compile_conventional
from repro.sim import simulate_timing
from repro.util import format_table

from benchmarks.conftest import default_config


def lcp2():
    a, b = inp("a"), inp("b")
    union = mk("bis", a, b)
    return GMA(("\\res",), (mk("and64", union, mk("neg64", union)),))


def rowop():
    m = inp("M", Sort.MEM)
    p, q, c = inp("p"), inp("q"), inp("c")
    elem = mk("sub64", mk("select", m, p), mk("mul64", c, mk("select", m, q)))
    return GMA(
        ("M", "p", "q"),
        (
            mk("store", m, p, elem),
            mk("add64", p, const(8)),
            mk("add64", q, const(8)),
        ),
        guard=mk("cmpult", p, inp("pend")),
    )


def mask_low_byte():
    return GMA(("\\res",), (mk("and64", inp("a"), const(0xFFFFFFFFFFFFFF00)),))


def carry_fold():
    a, b = inp("a"), inp("b")
    s = mk("add64", a, b)
    return GMA(("\\res",), (mk("add64", s, mk("cmpult", s, a)),))


PROBLEMS = [
    ("lcp2", lcp2(), 6),
    ("rowop", rowop(), 14),
    ("mask_low_byte", mask_low_byte(), 4),
    ("carry_fold", carry_fold(), 5),
]


def test_extra_problems(report, benchmark):
    rows = []
    for name, gma, max_cycles in PROBLEMS:
        cfg = default_config(min_cycles=1, max_cycles=max_cycles)
        cfg.saturation.max_rounds = 10
        cfg.saturation.max_enodes = 2500
        result = Denali(ev6(), config=cfg).compile_gma(gma)
        conventional = compile_conventional(gma, ev6())
        assert simulate_timing(conventional, ev6()).ok
        assert result.verified, name
        assert result.optimal, name
        assert result.cycles <= conventional.cycles, name
        rows.append(
            [
                name,
                "compiles; peak ALU performance",
                "%d cyc (optimal, verified)" % result.cycles,
                "%d cyc" % conventional.cycles,
            ]
        )

    # mask_low_byte shows a strict win: zapnot vs. ldiq+and.
    assert int(rows[2][2].split()[0]) < int(rows[2][3].split()[0])

    benchmark(
        lambda: Denali(
            ev6(), config=default_config(min_cycles=1, max_cycles=4)
        ).compile_gma(lcp2()).cycles
    )

    report(
        "E8 additional problems (rowop, lcp2, invented problems)",
        format_table(["problem", "paper", "Denali", "conventional"], rows),
    )
