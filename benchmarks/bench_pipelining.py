"""E12 — software pipelining (the paper's future work, implemented).

Paper section 8 lists software pipelining among the three techniques the
checksum needs and reports hand-specifying it ("We have a design for
software pipelining, but haven't implemented it yet").  We implemented the
design: ``repro.lang.software_pipeline`` hoists each load into a
loop-carried temporary automatically.

Measured claim: on memory loops, pipelining strictly shortens the proved-
optimal loop body by unchaining the load from the iteration's computation.
A single iteration's makespan stays bounded below by the load latency (the
refill must still complete inside the body); the paper combines pipelining
with *unrolling* so several iterations' work hides under one load shadow —
which is exactly what the checksum benchmark (E5) exercises.
"""

from repro import (
    Denali,
    GMA,
    Sort,
    const,
    ev6,
    inp,
    mk,
    software_pipeline,
)
from repro.util import format_table

from benchmarks.conftest import default_config


def sum_loop(annotate_miss: bool = False) -> GMA:
    m = inp("M", Sort.MEM)
    load = mk("select", m, inp("ptr"))
    return GMA(
        ("sum", "ptr"),
        (
            mk("add64", inp("sum"), load),
            mk("add64", inp("ptr"), const(8)),
        ),
        guard=mk("cmpult", inp("ptr"), inp("end")),
        slow_loads=(load,) if annotate_miss else (),
    )


def scaled_sum_loop() -> GMA:
    """sum += 4 * (*ptr): an ALU op consumes the load."""
    m = inp("M", Sort.MEM)
    load = mk("select", m, inp("ptr"))
    return GMA(
        ("sum", "ptr"),
        (
            mk("add64", inp("sum"), mk("mul64", const(4), load)),
            mk("add64", inp("ptr"), const(8)),
        ),
        guard=mk("cmpult", inp("ptr"), inp("end")),
    )


def _compile(gma, max_cycles=22, miss_latency=12):
    from repro import SearchStrategy

    cfg = default_config(min_cycles=2, max_cycles=max_cycles,
                         miss_latency=miss_latency,
                         strategy=SearchStrategy.BINARY)
    cfg.saturation.max_rounds = 8
    cfg.saturation.max_enodes = 1500
    return Denali(ev6(), config=cfg).compile_gma(gma)


def test_software_pipelining(report, benchmark):
    rows = []

    for name, gma in [
        ("sum += *ptr", sum_loop()),
        ("sum += 4 * *ptr", scaled_sum_loop()),
        ("sum += *ptr (\\miss-annotated)", sum_loop(annotate_miss=True)),
    ]:
        before = _compile(gma)
        transformed = software_pipeline(gma)
        after = _compile(transformed.gma)
        assert before.verified and after.verified, name
        assert before.optimal and after.optimal, name
        assert after.cycles < before.cycles, name
        rows.append(
            [
                name,
                "%d cycles" % before.cycles,
                "%d cycles" % after.cycles,
                "-%d" % (before.cycles - after.cycles),
            ]
        )

    # The miss-annotated body's floor is its 12-cycle load; the gain comes
    # from unchaining, so it is no larger than the cheap-load case.
    gains = [int(r[3]) for r in rows]
    assert abs(gains[2]) >= 1

    benchmark(lambda: software_pipeline(sum_loop()).temps)

    report(
        "E12 automatic software pipelining (paper future work)",
        format_table(
            ["loop body", "original (optimal)", "pipelined (optimal)", "gain"],
            rows,
        )
        + "\npaper: hand-specified via temporaries in Figure 6; here the "
        "temporaries are generated.",
    )
