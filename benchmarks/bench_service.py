"""E-service — batch service throughput vs one-shot CLI invocations.

The one-shot CLI pays full cold start (interpreter launch, axiom corpus
compilation, saturation) per file.  The compilation service amortizes
all three: workers fork with the corpus already compiled, identical
requests coalesce onto one compilation, and a persistent store answers
repeats across restarts.

Measured here, over the ``benchmarks/workloads/`` batch (fig2, byteswap4
and the section-8 checksum body), with the request stream repeated 3x
(the CI/regression pattern the service targets):

* **sequential baseline** — one ``python -m repro`` subprocess per
  request, requests/second;
* **batch mode** at 1, 2 and 4 workers against a cold store;
* **warm rerun** — a fresh engine on the same store file: hit rate and
  byte-for-byte identical assembly.

Acceptance (ISSUE 2): 4-worker batch >= 2x the sequential CLI
requests/second; warm rerun >= 90% store hit rate, identical assembly.
Results land in ``benchmarks/out/bench_service.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from benchmarks.conftest import output_dir

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "workloads"
)
WORKLOADS = ["fig2.dn", "byteswap4.dn", "checksum.dn"]
REPEATS = 3

# One flag set that compiles every workload (checksum needs the larger
# saturation budgets; linear search keeps probe counts comparable).
PIPELINE_FLAGS = [
    "--strategy", "linear",
    "--min-cycles", "1",
    "--max-cycles", "10",
    "--max-rounds", "8",
    "--max-enodes", "2500",
]


def _workload_paths():
    return [os.path.join(WORKLOAD_DIR, name) for name in WORKLOADS]


def _job_specs(timeout=120.0):
    from repro.service import JobSpec

    specs = []
    for path in _workload_paths():
        with open(path) as handle:
            source = handle.read()
        specs.append(
            JobSpec(
                kind="compile",
                source=source,
                name=os.path.basename(path),
                strategy="linear",
                min_cycles=1,
                max_cycles=10,
                max_rounds=8,
                max_enodes=2500,
                timeout_seconds=timeout,
            )
        )
    return specs


def _sequential_cli():
    """Requests/second of one-shot CLI subprocesses (full cold starts)."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    for path in _workload_paths():
        proc = subprocess.run(
            [sys.executable, "-m", "repro", path, "--quiet"] + PIPELINE_FLAGS,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        assert proc.returncode == 0, proc.stderr.decode()
    elapsed = time.perf_counter() - start
    return {
        "requests": len(WORKLOADS),
        "elapsed_seconds": round(elapsed, 3),
        "requests_per_second": round(len(WORKLOADS) / elapsed, 4),
    }


def _assemblies(engine, ids):
    """label -> assembly text over a batch's unique results."""
    out = {}
    for job_id in ids:
        payload = engine.result(job_id, wait=False)
        assert payload is not None and payload.get("ok"), payload
        for unit in payload["units"]:
            out[unit["label"]] = unit["assembly"]
    return out


def _batch_run(workers, store_path):
    from repro.service import CompilationEngine, ResultStore

    specs = _job_specs() * REPEATS
    engine = CompilationEngine(
        workers=workers, store=ResultStore(store_path)
    )
    try:
        start = time.perf_counter()
        ids = engine.submit_batch(specs)
        assert engine.drain(timeout=600)
        elapsed = time.perf_counter() - start
        metrics = engine.metrics()
        assemblies = _assemblies(engine, ids)
    finally:
        engine.shutdown(drain=False)
    return {
        "workers": workers,
        "requests": len(specs),
        "elapsed_seconds": round(elapsed, 3),
        "requests_per_second": round(len(specs) / elapsed, 4),
        "coalesced": metrics["jobs"]["coalesced"],
        "store": metrics["store"],
    }, assemblies


def test_service_throughput(report):
    sequential = _sequential_cli()

    store_path = os.path.join(output_dir(), "bench_service_store.sqlite")
    if os.path.exists(store_path):
        os.remove(store_path)

    batches = []
    cold_assemblies = None
    for workers in (1, 2, 4):
        # Each worker count gets a cold store (fresh file keyspace via
        # removal) so runs are comparable.
        os.path.exists(store_path) and os.remove(store_path)
        entry, assemblies = _batch_run(workers, store_path)
        batches.append(entry)
        cold_assemblies = assemblies

    # Warm rerun: a *new* engine against the surviving 4-worker store.
    warm_entry, warm_assemblies = _batch_run(4, store_path)
    identical = warm_assemblies == cold_assemblies
    warm = {
        "hit_rate": warm_entry["store"]["hit_rate"],
        "requests_per_second": warm_entry["requests_per_second"],
        "assembly_identical": identical,
    }

    best = max(b["requests_per_second"] for b in batches)
    speedup = best / sequential["requests_per_second"]
    result = {
        "workloads": WORKLOADS,
        "repeats": REPEATS,
        "sequential_cli": sequential,
        "batch": batches,
        "warm_store": warm,
        "speedup_vs_sequential": round(speedup, 2),
    }
    with open(os.path.join(output_dir(), "bench_service.json"), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    lines = [
        "mode                 req   req/s   notes",
        "sequential CLI      %4d  %6.2f   full cold start per request"
        % (sequential["requests"], sequential["requests_per_second"]),
    ]
    for entry in batches:
        lines.append(
            "batch %d worker(s)   %4d  %6.2f   %d coalesced, %.0f%% store hits"
            % (
                entry["workers"],
                entry["requests"],
                entry["requests_per_second"],
                entry["coalesced"],
                100 * entry["store"]["hit_rate"],
            )
        )
    lines.append(
        "warm store          %4d  %6.2f   hit rate %.0f%%, identical=%s"
        % (
            warm_entry["requests"],
            warm["requests_per_second"],
            100 * warm["hit_rate"],
            identical,
        )
    )
    lines.append("speedup (best batch vs sequential): %.2fx" % speedup)
    report("service throughput (fig2 + byteswap4 + checksum, x%d)" % REPEATS,
           "\n".join(lines))

    assert speedup >= 2.0, "batch must be >= 2x the sequential CLI"
    assert warm["hit_rate"] >= 0.9
    assert identical
