"""Tests for assembly rendering (the Figure 4 output format)."""


from repro.core.emit import Operand, Schedule, ScheduledInstruction
from repro.egraph.egraph import ENode


def _instr(op, mnemonic, operands, dest, cycle=0, unit="U0", comment=""):
    return ScheduledInstruction(
        cycle=cycle,
        unit=unit,
        node=ENode(op, (), None, None),
        class_id=0,
        mnemonic=mnemonic,
        operands=operands,
        dest=dest,
        comment=comment,
    )


class TestOperandRender:
    def test_register(self):
        assert Operand(0, register="$5").render() == "$5"

    def test_literal(self):
        assert Operand(0, literal=42).render() == "42"

    def test_memory(self):
        assert Operand(0, memory=True).render() == "<mem>"


class TestInstructionRender:
    def test_three_operand_alu(self):
        i = _instr(
            "add64",
            "addq",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        assert i.render().startswith("addq $16, 1, $1")
        assert "# 0, U0" in i.render()

    def test_load_form(self):
        i = _instr(
            "select",
            "ldq",
            [Operand(0, memory=True), Operand(0, register="$16")],
            "$2",
        )
        assert i.render().startswith("ldq $2, 0($16)")

    def test_store_form(self):
        i = _instr(
            "store",
            "stq",
            [
                Operand(0, memory=True),
                Operand(0, register="$16"),
                Operand(0, register="$3"),
            ],
            None,
        )
        assert i.render().startswith("stq $3, 0($16)")

    def test_ldiq_form(self):
        i = _instr("ldiq", "ldiq", [Operand(0, literal=0xBEEF)], "$4")
        assert i.render().startswith("ldiq $4, 48879")

    def test_comment_appended(self):
        i = _instr(
            "add64",
            "addq",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
            comment="(add64 a 1)",
        )
        assert i.render().endswith("; (add64 a 1)")

    def test_cycle_and_unit_annotation(self):
        i = _instr(
            "sll",
            "sll",
            [Operand(0, register="$1"), Operand(0, literal=2)],
            "$2",
            cycle=3,
            unit="U1",
        )
        assert "# 3, U1" in i.render()


class TestScheduleRender:
    def test_register_map_header(self):
        sched = Schedule(
            instructions=[],
            cycles=1,
            register_map={"a": "$16", "0": "$31"},
            goal_operands=[],
        )
        out = sched.render()
        assert out.startswith("// Register Map: {0=$31, a=$16}")
        assert "code:" in out

    def test_custom_label(self):
        sched = Schedule(
            instructions=[],
            cycles=2,
            register_map={},
            goal_operands=[],
        )
        assert "byteswap4:" in sched.render(label="byteswap4")

    def test_cycle_count_footer(self):
        sched = Schedule(
            instructions=[],
            cycles=5,
            register_map={},
            goal_operands=[],
        )
        assert "// 5 cycles" in sched.render()

    def test_instruction_count(self):
        i = _instr(
            "add64",
            "addq",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        sched = Schedule(
            instructions=[i, i],
            cycles=2,
            register_map={},
            goal_operands=[],
        )
        assert sched.instruction_count() == 2


class TestQuadRender:
    def test_nops_fill_issue_slots(self):
        from repro.isa import ev6

        i = _instr(
            "add64",
            "addq",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
            cycle=0,
            unit="L0",
        )
        sched = Schedule(
            instructions=[i],
            cycles=2,
            register_map={"a": "$16"},
            goal_operands=[],
        )
        out = sched.render_quad(ev6(), label="demo")
        # Cycle 0: 1 real + 3 nops; cycle 1: 4 nops.
        assert out.count("nop") == 7
        assert "demo:" in out

    def test_unit_order_matches_spec(self):
        from repro.isa import ev6

        lower = _instr(
            "bis",
            "bis",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
            cycle=0,
            unit="L0",
        )
        upper = _instr(
            "sll",
            "sll",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$2",
            cycle=0,
            unit="U0",
        )
        sched = Schedule(
            instructions=[lower, upper],
            cycles=1,
            register_map={},
            goal_operands=[],
        )
        out = sched.render_quad(ev6())
        # U0 prints before L0, as in Figure 4's unit ordering.
        assert out.index("sll") < out.index("bis")
