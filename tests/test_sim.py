"""Tests for the functional executor and the timing validator."""

import pytest

from repro.core.emit import Operand, Schedule, ScheduledInstruction
from repro.egraph.egraph import ENode
from repro.isa import ev6, simple_risc
from repro.sim import (
    ExecutionError,
    execute_schedule,
    simulate_timing,
)
from repro.terms import Memory


def _instr(op, cycle, unit, operands, dest, mnemonic=None, class_id=0):
    return ScheduledInstruction(
        cycle=cycle,
        unit=unit,
        node=ENode(op, (), None, None),
        class_id=class_id,
        mnemonic=mnemonic or op,
        operands=operands,
        dest=dest,
    )


def _schedule(instrs, cycles, reg_map=None, goals=None):
    return Schedule(
        instructions=instrs,
        cycles=cycles,
        register_map=reg_map or {"a": "$16", "b": "$17"},
        goal_operands=goals or [],
    )


class TestExecute:
    def test_single_add(self):
        instr = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, register="$16"), Operand(0, register="$17")],
            "$1",
        )
        sched = _schedule([instr], 1)
        state = execute_schedule(sched, {"a": 2, "b": 3})
        assert state.read("$1") == 5

    def test_immediate_operand(self):
        instr = _instr(
            "sll", 0, "P0", [Operand(0, register="$16"), Operand(0, literal=4)], "$1"
        )
        state = execute_schedule(_schedule([instr], 1), {"a": 3})
        assert state.read("$1") == 48

    def test_zero_register_reads_zero(self):
        instr = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, register="$31"), Operand(0, literal=9)],
            "$1",
        )
        state = execute_schedule(_schedule([instr], 1), {})
        assert state.read("$1") == 9

    def test_zero_register_write_discarded(self):
        instr = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, literal=1), Operand(0, literal=1)],
            "$31",
        )
        state = execute_schedule(_schedule([instr], 1), {})
        assert state.read("$31") == 0

    def test_chain_in_cycle_order(self):
        i1 = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        i2 = _instr(
            "sll", 1, "P0", [Operand(0, register="$1"), Operand(0, literal=1)], "$2"
        )
        state = execute_schedule(_schedule([i2, i1], 2), {"a": 5})
        assert state.read("$2") == 12

    def test_ldiq(self):
        instr = _instr("ldiq", 0, "P0", [Operand(0, literal=0xDEAD)], "$1")
        state = execute_schedule(_schedule([instr], 1), {})
        assert state.read("$1") == 0xDEAD

    def test_load_store_roundtrip(self):
        store = _instr(
            "store",
            0,
            "L0",
            [
                Operand(-1, memory=True),
                Operand(0, register="$16"),
                Operand(0, literal=42),
            ],
            None,
            mnemonic="stq",
            class_id=7,
        )
        load = _instr(
            "select",
            1,
            "L0",
            [Operand(7, memory=True), Operand(0, register="$16")],
            "$1",
            mnemonic="ldq",
        )
        sched = _schedule([store, load], 4, reg_map={"p": "$16"})
        state = execute_schedule(sched, {"p": 128, "M": Memory()})
        assert state.read("$1") == 42
        assert state.memory.select(128) == 42

    def test_unwritten_register_read_raises(self):
        instr = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, register="$5"), Operand(0, literal=1)],
            "$1",
        )
        with pytest.raises(ExecutionError):
            execute_schedule(_schedule([instr], 1), {})

    def test_unbound_input_raises(self):
        with pytest.raises(ExecutionError):
            execute_schedule(_schedule([], 1, reg_map={}), {"zzz": 1})


class TestTiming:
    def _ok_schedule(self):
        i1 = _instr(
            "add64",
            0,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        i2 = _instr(
            "sll", 1, "U0", [Operand(0, register="$1"), Operand(0, literal=1)], "$2"
        )
        return _schedule([i1, i2], 2)

    def test_valid_schedule_passes(self):
        report = simulate_timing(self._ok_schedule(), ev6())
        assert report.ok
        assert report.makespan == 2

    def test_wrong_unit_flagged(self):
        bad = _instr(
            "sll", 0, "L0", [Operand(0, register="$16"), Operand(0, literal=1)], "$1"
        )
        report = simulate_timing(_schedule([bad], 1), ev6())
        assert not report.ok
        assert any("unit" in v for v in report.violations)

    def test_double_booked_unit_flagged(self):
        a = _instr(
            "add64",
            0,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        b = _instr(
            "sub64",
            0,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$2",
        )
        report = simulate_timing(_schedule([a, b], 1), ev6())
        assert not report.ok
        assert any("double-booked" in v for v in report.violations)

    def test_operand_before_ready_flagged(self):
        producer = _instr(
            "mul64",
            0,
            "U1",
            [Operand(0, register="$16"), Operand(0, register="$17")],
            "$1",
        )  # latency 7: ready end of cycle 6
        consumer = _instr(
            "add64",
            1,
            "L1",
            [Operand(0, register="$1"), Operand(0, literal=1)],
            "$2",
        )
        report = simulate_timing(_schedule([producer, consumer], 8), ev6())
        assert not report.ok
        assert any("before it is ready" in v for v in report.violations)

    def test_cross_cluster_consumption_flagged(self):
        producer = _instr(
            "add64",
            0,
            "U0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )  # cluster 0, ready end of 0; cluster 1 sees it end of 1
        consumer = _instr(
            "sub64",
            1,
            "U1",
            [Operand(0, register="$1"), Operand(0, literal=1)],
            "$2",
        )
        report = simulate_timing(_schedule([producer, consumer], 3), ev6())
        assert not report.ok
        ok_consumer = _instr(
            "sub64",
            2,
            "U1",
            [Operand(0, register="$1"), Operand(0, literal=1)],
            "$2",
        )
        report2 = simulate_timing(_schedule([producer, ok_consumer], 3), ev6())
        assert report2.ok

    def test_makespan_overrun_flagged(self):
        i = _instr(
            "mul64",
            0,
            "U1",
            [Operand(0, register="$16"), Operand(0, register="$17")],
            "$1",
        )
        report = simulate_timing(_schedule([i], 3), ev6())
        assert not report.ok
        assert any("makespan" in v for v in report.violations)

    def test_register_reuse_accepted(self):
        # $1 is dead after the sll reads it; redefining it is legal.
        a = _instr(
            "add64",
            0,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        use = _instr(
            "sll", 1, "U0", [Operand(0, register="$1"), Operand(0, literal=1)], "$2"
        )
        b = _instr(
            "sub64",
            2,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        report = simulate_timing(_schedule([a, use, b], 3), ev6())
        assert report.ok, report.violations

    def test_read_of_redefined_register_too_early_flagged(self):
        # The reader binds to the most recent writer; reading in the same
        # cycle the new value is produced is too early.
        a = _instr(
            "add64",
            0,
            "L0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        b = _instr(
            "sub64",
            1,
            "U1",
            [Operand(0, register="$16"), Operand(0, literal=2)],
            "$1",
        )
        reader = _instr(
            "bis", 1, "L1", [Operand(0, register="$1"), Operand(0, literal=1)], "$2"
        )
        report = simulate_timing(_schedule([a, b, reader], 2), ev6())
        assert not report.ok

    def test_memory_dependence_checked(self):
        store = _instr(
            "store",
            0,
            "L0",
            [
                Operand(-1, memory=True),
                Operand(0, register="$16"),
                Operand(0, literal=1),
            ],
            None,
            mnemonic="stq",
            class_id=5,
        )
        early_load = _instr(
            "select",
            0,
            "L1",
            [Operand(5, memory=True), Operand(0, register="$16")],
            "$1",
            mnemonic="ldq",
        )
        sched = _schedule([store, early_load], 4, reg_map={"p": "$16"})
        report = simulate_timing(sched, ev6())
        assert not report.ok

    def test_issue_width_enforced_on_simple_risc(self):
        a = _instr(
            "add64",
            0,
            "P0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$1",
        )
        b = _instr(
            "sub64",
            0,
            "P0",
            [Operand(0, register="$16"), Operand(0, literal=1)],
            "$2",
        )
        report = simulate_timing(_schedule([a, b], 1), simple_risc())
        assert not report.ok
