"""Tests for the ``repro fuzz`` CLI verb and the campaign driver."""

import json

from repro.cli import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, main
from repro.fuzz import FuzzConfig, OracleOptions, run_fuzz


class TestDriver:
    def test_campaign_is_deterministic(self):
        a = run_fuzz(FuzzConfig(seed=3, iterations=4))
        b = run_fuzz(FuzzConfig(seed=3, iterations=4))
        assert a.ok and b.ok
        assert a.to_dict()["checks"] == b.to_dict()["checks"]
        assert a.gmas == b.gmas

    def test_time_budget_stops_early(self):
        report = run_fuzz(
            FuzzConfig(seed=0, iterations=10_000, time_budget_seconds=0.0)
        )
        assert report.iterations == 0
        assert report.stopped_early == "time-budget"

    def test_report_shape(self):
        report = run_fuzz(FuzzConfig(seed=1, iterations=3))
        payload = report.to_dict()
        assert payload["iterations"] == 3
        assert payload["requested_iterations"] == 3
        assert payload["ok"] is True
        assert payload["failures"] == []
        assert payload["gmas"] >= 3
        assert payload["elapsed_seconds"] >= 0

    def test_progress_callback_fires(self):
        seen = []
        run_fuzz(
            FuzzConfig(seed=2, iterations=3),
            progress=lambda i, partial: seen.append(i),
        )
        assert seen == [0, 1, 2]


class TestFuzzVerb:
    def test_small_campaign(self, capsys):
        status = main(["fuzz", "--seed", "1", "--iterations", "3"])
        err = capsys.readouterr().err
        assert status == EXIT_OK
        assert "fuzz: 3 cases" in err
        assert "0 failures" in err

    def test_json_output(self, capsys):
        status = main(
            ["fuzz", "--seed", "1", "--iterations", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert status == EXIT_OK
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["iterations"] == 2

    def test_oracle_subset(self, capsys):
        status = main(
            [
                "fuzz", "--seed", "1", "--iterations", "2",
                "--oracles", "asm-vs-eval", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == EXIT_OK
        assert set(payload["checks"]) <= {"asm-vs-eval"}

    def test_unknown_oracle_is_usage_error(self, capsys):
        status = main(["fuzz", "--oracles", "nope"])
        assert status == EXIT_USAGE
        assert "unknown oracle" in capsys.readouterr().err

    def test_nonpositive_iterations_is_usage_error(self, capsys):
        status = main(["fuzz", "--iterations", "0"])
        assert status == EXIT_USAGE

    def test_replay_directory(self, tmp_path, capsys):
        from repro.fuzz import save_case

        save_case(
            "(\\procdecl t ((a long)) long (:= (res (+ a 1))))",
            "ok_case",
            directory=str(tmp_path),
        )
        status = main(["fuzz", "--replay", str(tmp_path)])
        err = capsys.readouterr().err
        assert status == EXIT_OK
        assert "1/1 passed" in err

    def test_replay_failure_sets_exit_code(self, tmp_path, capsys):
        from repro.fuzz import save_case

        save_case(
            "(\\procdecl broken ((a long)) long",
            "broken",
            directory=str(tmp_path),
        )
        status = main(["fuzz", "--replay", str(tmp_path), "--json"])
        out = capsys.readouterr().out
        assert status == EXIT_FAILURE
        assert json.loads(out)["ok"] is False


class TestFailurePath:
    def test_failures_are_minimised_and_saved(self, tmp_path, monkeypatch):
        """End to end: injected bug -> divergence -> shrink -> corpus."""
        from repro.terms.evaluator import Evaluator

        real = Evaluator._eval_uncached

        def buggy(self, term):
            value = real(self, term)
            if (
                not term.is_const
                and not term.is_input
                and term.op == "xor64"
            ):
                value = value ^ 1
            return value

        monkeypatch.setattr(Evaluator, "_eval_uncached", buggy)

        # Iterate until the campaign stream hits an xor-bearing case;
        # seed 4 reaches one within a few iterations.
        report = run_fuzz(
            FuzzConfig(
                seed=4,
                iterations=30,
                oracle=OracleOptions(oracles=("asm-vs-eval",)),
                save_failures_to=str(tmp_path),
                max_failures=1,
            )
        )
        assert not report.ok
        assert report.stopped_early == "max-failures"
        (failure,) = report.failures
        assert failure.oracles == ["asm-vs-eval"]
        assert failure.minimized_lines <= len(
            failure.source.splitlines()
        ) + 2  # minimised rendering is line-per-statement
        saved = list(tmp_path.glob("*.dn"))
        assert len(saved) == 1
        text = saved[0].read_text()
        assert "; oracle: asm-vs-eval" in text
        assert "\\procdecl" in text
