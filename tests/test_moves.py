"""Tests for output binding and parallel-move sequentialisation (section 7)."""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    GMA,
    const,
    ev6,
    inp,
    mk,
)
from repro.core.moves import MoveError, bind_outputs, sequentialize_parallel_moves
from repro.matching import SaturationConfig
from repro.sim import execute_schedule, simulate_timing


class TestSequentialize:
    def test_identity_moves_dropped(self):
        assert sequentialize_parallel_moves({"$1": "$1"}) == []

    def test_independent_moves_any_order(self):
        out = sequentialize_parallel_moves({"$1": "$3", "$2": "$4"})
        assert sorted(out) == [("$1", "$3"), ("$2", "$4")]

    def test_chain_ordered_correctly(self):
        # $1 <- $2 and $2 <- $3: must copy $1 <- $2 first.
        out = sequentialize_parallel_moves({"$1": "$2", "$2": "$3"})
        assert out == [("$1", "$2"), ("$2", "$3")]

    def test_swap_uses_temp(self):
        out = sequentialize_parallel_moves({"$1": "$2", "$2": "$1"}, temp="$9")
        assert len(out) == 3
        # Simulate to confirm the swap.
        regs = {"$1": 10, "$2": 20, "$9": 0}
        for dst, src in out:
            regs[dst] = regs[src]
        assert regs["$1"] == 20 and regs["$2"] == 10

    def test_three_cycle_rotation(self):
        out = sequentialize_parallel_moves(
            {"$1": "$2", "$2": "$3", "$3": "$1"}, temp="$9"
        )
        regs = {"$1": 1, "$2": 2, "$3": 3, "$9": 0}
        for dst, src in out:
            regs[dst] = regs[src]
        assert (regs["$1"], regs["$2"], regs["$3"]) == (2, 3, 1)

    def test_cycle_without_temp_raises(self):
        with pytest.raises(MoveError):
            sequentialize_parallel_moves({"$1": "$2", "$2": "$1"})

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_random_permutations_correct(self, n):
        import itertools

        regs_names = ["$%d" % i for i in range(1, n + 1)]
        for perm in itertools.permutations(range(n)):
            moves = {regs_names[i]: regs_names[perm[i]] for i in range(n)}
            out = sequentialize_parallel_moves(moves, temp="$9")
            regs = {r: idx for idx, r in enumerate(regs_names)}
            regs["$9"] = -1
            want = {
                regs_names[i]: regs[regs_names[perm[i]]] for i in range(n)
            }
            for dst, src in out:
                regs[dst] = regs[src]
            for r, v in want.items():
                assert regs[r] == v, (perm, out)


def _compile(gma):
    den = Denali(
        ev6(),
        config=DenaliConfig(
            max_cycles=8,
            saturation=SaturationConfig(max_rounds=8, max_enodes=1000),
        ),
    )
    return den.compile_gma(gma)


class TestBindOutputs:
    def test_section7_example(self):
        """(reg6, reg7) := (reg6 + reg7, reg6) — the paper's example."""
        gma = GMA(
            ("reg6", "reg7"),
            (mk("add64", inp("reg6"), inp("reg7")), inp("reg6")),
        )
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        # Execute: inputs reg6=5, reg7=7 -> reg6'=12, reg7'=5.
        state = execute_schedule(bound, {"reg6": 5, "reg7": 7})
        reg6 = bound.register_map["reg6"]
        reg7 = bound.register_map["reg7"]
        assert state.read(reg6) == 12
        assert state.read(reg7) == 5
        assert simulate_timing(bound, ev6()).ok

    def test_pure_swap_binds_through_temp(self):
        gma = GMA(("a", "b"), (inp("b"), inp("a")))
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        movs = [i for i in bound.instructions if i.mnemonic == "mov"]
        assert len(movs) == 3  # swap via temporary
        state = execute_schedule(bound, {"a": 1, "b": 2})
        assert state.read(bound.register_map["a"]) == 2
        assert state.read(bound.register_map["b"]) == 1

    def test_identity_needs_no_moves(self):
        gma = GMA(("a",), (inp("a"),))
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        # The value already lives in a's register: identity move dropped.
        assert bound.instruction_count() == result.schedule.instruction_count()

    def test_fresh_target_gets_one_move(self):
        gma = GMA(("x",), (mk("add64", inp("a"), inp("b")),))
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        movs = [i for i in bound.instructions if i.mnemonic == "mov"]
        assert len(movs) == 1
        state = execute_schedule(bound, {"a": 2, "b": 3})
        assert state.read(bound.register_map["x"]) == 5

    def test_constant_target_materialised_by_move(self):
        gma = GMA(("a",), (const(7),))
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        state = execute_schedule(bound, {"a": 99})
        assert state.read(bound.register_map["a"]) == 7

    def test_goal_operands_updated(self):
        gma = GMA(("a", "b"), (inp("b"), inp("a")))
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        assert bound.goal_operands[0].register == bound.register_map["a"]
        assert bound.goal_operands[1].register == bound.register_map["b"]

    def test_timing_valid_after_binding(self):
        gma = GMA(
            ("p", "q"),
            (mk("add64", inp("q"), const(8)), mk("add64", inp("p"), const(8))),
        )
        result = _compile(gma)
        bound = bind_outputs(result.schedule, gma, ev6())
        report = simulate_timing(bound, ev6())
        assert report.ok, report.violations


class TestPipelineIntegration:
    def test_config_flag_binds_outputs(self):
        from repro.matching import SaturationConfig

        den = Denali(
            ev6(),
            config=DenaliConfig(
                max_cycles=8,
                bind_outputs=True,
                saturation=SaturationConfig(max_rounds=8, max_enodes=1000),
            ),
        )
        gma = GMA(
            ("reg6", "reg7"),
            (mk("add64", inp("reg6"), inp("reg7")), inp("reg6")),
        )
        result = den.compile_gma(gma)
        assert result.verified
        movs = [i for i in result.schedule.instructions if i.mnemonic == "mov"]
        assert movs  # the destination conflict forced late moves

    def test_swap_verifies_with_binding(self):
        from repro.matching import SaturationConfig

        den = Denali(
            ev6(),
            config=DenaliConfig(
                max_cycles=4,
                bind_outputs=True,
                saturation=SaturationConfig(max_rounds=4, max_enodes=500),
            ),
        )
        result = den.compile_gma(GMA(("a", "b"), (inp("b"), inp("a"))))
        assert result.verified
        assert result.schedule.instruction_count() == 3  # swap via temp
