"""Tests for the destination-register allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.allocator import AllocationError, allocate_destinations


class TestBasics:
    def test_distinct_registers_while_live(self):
        # Three producers all read at the end: all live simultaneously.
        uses = {0: [3], 1: [3], 2: [3], 3: []}
        out = allocate_destinations(
            [True] * 4, uses, set(), ["r1", "r2", "r3", "r4"]
        )
        assert len(set(out[:3])) == 3

    def test_reuse_after_death(self):
        # 0 dies when 1 reads it, so its register is immediately reusable
        # (position 1 itself may take it); with a 2-register pool the four
        # values fit because at most two are ever live.
        uses = {0: [1], 1: [3], 2: [3], 3: []}
        out = allocate_destinations([True] * 4, uses, set(), ["r1", "r2"])
        assert out[1] == out[0]  # reuses the dying value's register
        assert out[2] != out[1]  # 1 is still live at 2

    def test_same_position_reuse(self):
        # 1 reads 0 and may overwrite 0's register (read happens at issue).
        uses = {0: [1], 1: []}
        out = allocate_destinations([True, True], uses, set(), ["r1"])
        assert out == ["r1", "r1"]

    def test_protected_not_released(self):
        uses = {0: [1], 1: []}
        with pytest.raises(AllocationError):
            allocate_destinations([True, True], uses, {0}, ["r1"])

    def test_protected_with_enough_registers(self):
        uses = {0: [1], 1: []}
        out = allocate_destinations([True, True], uses, {0}, ["r1", "r2"])
        assert out[0] != out[1]

    def test_no_dest_positions_skip(self):
        uses = {0: [1], 1: [], 2: []}
        out = allocate_destinations([True, False, True], uses, set(), ["r1"])
        assert out[1] is None
        assert out[0] == "r1"

    def test_pool_exhaustion_raises(self):
        uses = {i: [5] for i in range(5)}
        uses[5] = []
        with pytest.raises(AllocationError):
            allocate_destinations([True] * 6, uses, set(), ["r1", "r2"])

    def test_dead_value_register_reused_immediately(self):
        # 0 is never read: its register frees right away.
        uses = {0: [], 1: []}
        out = allocate_destinations([True, True], uses, set(), ["r1"])
        assert out == ["r1", "r1"]


class TestProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_no_live_range_overlap(self, data):
        """Random DAG-shaped use lists: two values sharing a register must
        have disjoint live ranges (def .. last use)."""
        n = data.draw(st.integers(2, 12))
        uses = {}
        for i in range(n):
            readers = data.draw(
                st.lists(st.integers(i + 1, n), max_size=3, unique=True)
            ) if i + 1 <= n else []
            uses[i] = [r for r in readers if r < n]
        protected = set(
            data.draw(st.lists(st.integers(0, n - 1), max_size=2, unique=True))
        )
        pool = ["r%d" % k for k in range(n)]  # always enough
        out = allocate_destinations([True] * n, uses, protected, pool)

        def last_use(i):
            if i in protected:
                return n + 1  # protected values live forever
            return max(uses[i], default=i)

        for i in range(n):
            for j in range(i + 1, n):
                if out[i] is not None and out[i] == out[j]:
                    # j redefines i's register: i must be dead by then.
                    assert last_use(i) <= j, (i, j, uses, out)
