"""Tests for the CNF builder and the CDCL solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CNF, CdclSolver, from_dimacs, to_dimacs
from repro.sat.solver import _luby


def brute_force_sat(cnf: CNF):
    """Reference decision procedure by exhaustive enumeration."""
    n = cnf.num_vars
    for bits in itertools.product([False, True], repeat=n):
        assign = {v: bits[v - 1] for v in range(1, n + 1)}
        ok = all(
            any(assign[abs(l)] == (l > 0) for l in clause)
            for clause in cnf.clauses
        )
        if ok:
            return assign
    return None


def check_model(cnf: CNF, model):
    for clause in cnf.clauses:
        assert any(model.get(abs(l), False) == (l > 0) for l in clause), clause


class TestCnfBuilder:
    def test_new_var_sequential(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_named_var_reused(self):
        cnf = CNF()
        assert cnf.var(("L", 0)) == cnf.var(("L", 0))

    def test_duplicate_name_rejected(self):
        cnf = CNF()
        cnf.new_var("x")
        with pytest.raises(ValueError):
            cnf.new_var("x")

    def test_name_of(self):
        cnf = CNF()
        v = cnf.var("hello")
        assert cnf.name_of(v) == "hello"

    def test_tautology_dropped(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add(v, -v)
        assert len(cnf) == 0

    def test_duplicate_literals_merged(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add(v, v)
        assert cnf.clauses == [[v]]

    def test_zero_literal_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add(0)

    def test_unallocated_variable_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add(3)

    def test_implies(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.implies(a, b)
        assert cnf.clauses == [[-a, b]]

    def test_stats(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(a, b)
        s = cnf.stats()
        assert s == {"vars": 2, "clauses": 1, "literals": 2}


class TestAtMostOne:
    @pytest.mark.parametrize("n", [2, 3, 5, 6, 7, 10, 20])
    def test_at_most_one_blocks_pairs(self, n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        cnf.at_most_one(xs)
        solver = CdclSolver()
        # Any two xs true must be unsat.
        res = solver.solve(cnf, assumptions=[xs[0], xs[n // 2]])
        assert res.satisfiable is False

    @pytest.mark.parametrize("n", [2, 5, 7, 12])
    def test_at_most_one_allows_single(self, n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        cnf.at_most_one(xs)
        for x in xs:
            res = CdclSolver().solve(cnf, assumptions=[x])
            assert res.satisfiable is True

    @pytest.mark.parametrize("n", [3, 8])
    def test_at_most_one_allows_none(self, n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        cnf.at_most_one(xs)
        res = CdclSolver().solve(cnf, assumptions=[-x for x in xs])
        assert res.satisfiable is True

    def test_exactly_one_requires_one(self):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(4)]
        cnf.exactly_one(xs)
        res = CdclSolver().solve(cnf, assumptions=[-x for x in xs])
        assert res.satisfiable is False


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestSolverBasics:
    def test_empty_formula_sat(self):
        res = CdclSolver().solve(CNF())
        assert res.satisfiable is True

    def test_single_unit(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add(v)
        res = CdclSolver().solve(cnf)
        assert res.satisfiable and res.model[v] is True

    def test_contradictory_units(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add(v)
        cnf.add(-v)
        assert CdclSolver().solve(cnf).satisfiable is False

    def test_simple_implication_chain(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(10)]
        cnf.add(vs[0])
        for a, b in zip(vs, vs[1:]):
            cnf.implies(a, b)
        res = CdclSolver().solve(cnf)
        assert res.satisfiable
        assert all(res.model[v] for v in vs)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance.
        cnf = CNF()
        x = {(p, h): cnf.new_var() for p in range(3) for h in range(2)}
        for p in range(3):
            cnf.add(x[(p, 0)], x[(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add(-x[(p1, h)], -x[(p2, h)])
        assert CdclSolver().solve(cnf).satisfiable is False

    def test_pigeonhole_4_into_4_sat(self):
        cnf = CNF()
        x = {(p, h): cnf.new_var() for p in range(4) for h in range(4)}
        for p in range(4):
            cnf.add_clause([x[(p, h)] for h in range(4)])
        for h in range(4):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    cnf.add(-x[(p1, h)], -x[(p2, h)])
        res = CdclSolver().solve(cnf)
        assert res.satisfiable
        check_model(cnf, res.model)

    def test_assumptions_sat_then_flipped(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(a, b)
        assert CdclSolver().solve(cnf, assumptions=[-a]).satisfiable
        assert CdclSolver().solve(cnf, assumptions=[-a, -b]).satisfiable is False

    def test_conflict_budget_returns_unknown(self):
        # A formula hard enough to exceed a 1-conflict budget.
        cnf = CNF()
        x = {(p, h): cnf.new_var() for p in range(6) for h in range(5)}
        for p in range(6):
            cnf.add_clause([x[(p, h)] for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    cnf.add(-x[(p1, h)], -x[(p2, h)])
        res = CdclSolver(conflict_budget=1).solve(cnf)
        assert res.satisfiable is None

    def test_stats_populated(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(a, b)
        cnf.add(-a, b)
        res = CdclSolver().solve(cnf)
        assert res.stats.time_seconds >= 0.0
        assert res.satisfiable


class TestSolverInterruption:
    """The deadline / stop_check hooks used by the portfolio scheduler."""

    @staticmethod
    def _needs_decisions() -> CNF:
        # Nothing propagates at level 0, so the solver must decide.
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(a, b)
        return cnf

    def test_stop_check_aborts_with_unknown(self):
        res = CdclSolver(stop_check=lambda: True).solve(self._needs_decisions())
        assert res.satisfiable is None
        assert res.model is None

    def test_stop_check_false_does_not_interfere(self):
        calls = []

        def stop():
            calls.append(1)
            return False

        res = CdclSolver(stop_check=stop).solve(self._needs_decisions())
        assert res.satisfiable is True
        assert calls  # the hook was actually polled

    def test_expired_deadline_aborts_with_unknown(self):
        res = CdclSolver(deadline_seconds=0.0).solve(self._needs_decisions())
        assert res.satisfiable is None

    def test_generous_deadline_solves_normally(self):
        res = CdclSolver(deadline_seconds=60.0).solve(self._needs_decisions())
        assert res.satisfiable is True

    def test_level_zero_conflicts_still_reported_unsat(self):
        # An input-level contradiction is decided during clause loading /
        # initial propagation, before any stop poll: still a hard UNSAT.
        cnf = CNF()
        a = cnf.new_var()
        cnf.add(a)
        cnf.add(-a)
        res = CdclSolver(stop_check=lambda: True).solve(cnf)
        assert res.satisfiable is False


class TestSolverDifferential:
    """CDCL vs. brute force on random small formulas."""

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_random_3sat_agrees_with_bruteforce(self, data):
        n = data.draw(st.integers(3, 8))
        m = data.draw(st.integers(1, 30))
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(n)]
        for _ in range(m):
            k = data.draw(st.integers(1, 3))
            clause = [
                data.draw(st.sampled_from(vs)) * data.draw(st.sampled_from([1, -1]))
                for _ in range(k)
            ]
            cnf.add_clause(clause)
        expected = brute_force_sat(cnf)
        res = CdclSolver().solve(cnf)
        assert res.satisfiable == (expected is not None)
        if res.satisfiable:
            check_model(cnf, res.model)

    def test_random_larger_instances_models_valid(self):
        rng = random.Random(12345)
        for trial in range(20):
            n, m = 40, 150
            cnf = CNF()
            vs = [cnf.new_var() for _ in range(n)]
            for _ in range(m):
                clause = rng.sample(vs, 3)
                cnf.add_clause([v * rng.choice([1, -1]) for v in clause])
            res = CdclSolver().solve(cnf)
            assert res.satisfiable is not None
            if res.satisfiable:
                check_model(cnf, res.model)

    def test_unsat_chain_with_parity(self):
        # x1, x1->x2->...->xn, and finally -xn: unsat regardless of length.
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(50)]
        cnf.add(vs[0])
        for a, b in zip(vs, vs[1:]):
            cnf.implies(a, b)
        cnf.add(-vs[-1])
        assert CdclSolver().solve(cnf).satisfiable is False


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.add(a, -b)
        cnf.add(b, c)
        text = to_dimacs(cnf, comments=["test"])
        back = from_dimacs(text)
        assert back.num_vars == 3
        assert back.clauses == [[a, -b], [b, c]]

    def test_comments_ignored(self):
        cnf = from_dimacs("c hello\np cnf 2 1\n1 -2 0\n")
        assert cnf.clauses == [[1, -2]]

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs("p wrong 1 1\n1 0\n")

    def test_clause_before_header_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs("1 0\np cnf 1 1\n")

    def test_unterminated_clause_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs("p cnf 2 1\n1 -2\n")

    def test_solver_agrees_after_roundtrip(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(5)]
        cnf.add(vs[0], vs[1])
        cnf.add(-vs[0], vs[2])
        cnf.add(-vs[2], -vs[1])
        r1 = CdclSolver().solve(cnf)
        r2 = CdclSolver().solve(from_dimacs(to_dimacs(cnf)))
        assert r1.satisfiable == r2.satisfiable
