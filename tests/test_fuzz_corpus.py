"""Tests for the persisted regression corpus and its replay."""

import time

from repro.fuzz import (
    corpus_dir,
    load_corpus,
    replay_corpus,
    save_case,
)


class TestCorpusFiles:
    def test_corpus_is_seeded(self):
        entries = load_corpus()
        assert len(entries) >= 10
        names = {e.name for e in entries}
        assert "regression_ldiq_goal" in names

    def test_headers_are_parsed(self):
        by_name = {e.name: e for e in load_corpus()}
        entry = by_name["gen_0179"]
        assert entry.seed == 179
        assert "loop" in entry.metadata["features"]
        regression = by_name["regression_ldiq_goal"]
        assert regression.metadata["oracle"] == "crash"
        assert regression.seed is None

    def test_feature_coverage(self):
        """The seeded corpus spans the generator's structural features."""
        text = "\n".join(e.source for e in load_corpus())
        for marker in ("\\do", "\\deref", "\\var", "\\cmov", "\\procdecl"):
            assert marker in text


class TestSaveAndLoad:
    def test_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        path = save_case(
            "(\\procdecl t ((a long)) long (:= (res a)))",
            "my case!",
            directory=directory,
            metadata={"seed": 42, "oracle": "asm-vs-eval"},
        )
        assert path.endswith("my_case_.dn")
        (entry,) = load_corpus(directory)
        assert entry.seed == 42
        assert entry.metadata["oracle"] == "asm-vs-eval"
        assert "(:= (res a))" in entry.source

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path))
        assert corpus_dir() == str(tmp_path)

    def test_save_overwrites_by_name(self, tmp_path):
        directory = str(tmp_path)
        save_case("(\\procdecl a ((x long)) long (:= (res 1)))", "c",
                  directory=directory)
        save_case("(\\procdecl a ((x long)) long (:= (res 2)))", "c",
                  directory=directory)
        (entry,) = load_corpus(directory)
        assert "(res 2)" in entry.source


class TestReplay:
    def test_replay_passes_and_is_fast(self):
        """Every corpus entry passes every oracle, inside the fast tier.

        The 10-second bound is the acceptance criterion for keeping the
        replay in tier 1; corpus additions that blow the budget belong in
        the slow tier or need faster programs.
        """
        start = time.perf_counter()
        report = replay_corpus()
        elapsed = time.perf_counter() - start
        assert report.entries >= 10
        assert report.ok, report.failures
        assert elapsed < 10.0, "corpus replay took %.1fs" % elapsed

    def test_replay_reports_failures(self, tmp_path):
        directory = str(tmp_path)
        save_case("(\\procdecl broken ((a long)) long", "broken",
                  directory=directory)
        report = replay_corpus(directory)
        assert not report.ok
        assert report.entries == 1 and report.passed == 0
        assert "broken" in report.failures[0]

    def test_replay_empty_directory(self, tmp_path):
        report = replay_corpus(str(tmp_path))
        assert report.ok
        assert report.entries == 0
