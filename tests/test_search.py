"""Tests for the cycle-budget search."""

import threading
import time

import pytest

from repro.core.probes import (
    CancelToken,
    PortfolioScheduler,
    Probe,
    SearchStrategy,
    search_min_cycles,
)


def _oracle(threshold, record=None, unknown_at=()):
    """A probe that is SAT iff k >= threshold."""

    def probe(k):
        if record is not None:
            record.append(k)
        if k in unknown_at:
            return None, None, Probe(cycles=k, satisfiable=None)
        sat = k >= threshold
        return sat, ("model", k) if sat else None, Probe(cycles=k, satisfiable=sat)

    return probe


class TestBinarySearch:
    @pytest.mark.parametrize("threshold", [1, 3, 5, 8, 12])
    def test_finds_minimum(self, threshold):
        out = search_min_cycles(_oracle(threshold), 1, 12)
        assert out.best_cycles == threshold
        assert out.best_payload == ("model", threshold)

    @pytest.mark.parametrize("threshold", [2, 5, 9])
    def test_proves_optimality(self, threshold):
        out = search_min_cycles(_oracle(threshold), 1, 12)
        assert out.optimal
        assert out.proved_floor == threshold - 1

    def test_all_unsat(self):
        out = search_min_cycles(_oracle(100), 1, 12)
        assert out.best_cycles is None
        assert out.proved_floor == 12

    def test_all_sat(self):
        out = search_min_cycles(_oracle(1), 1, 12)
        assert out.best_cycles == 1
        assert out.optimal  # floor is lo-1 = 0

    def test_probe_count_logarithmic(self):
        calls = []
        search_min_cycles(_oracle(7, record=calls), 1, 64)
        assert len(calls) <= 8

    def test_unknown_probes_degrade_gracefully(self):
        out = search_min_cycles(_oracle(5, unknown_at={4}), 1, 12)
        assert out.best_cycles == 5
        # Optimality cannot be claimed: K=4 was never refuted.
        assert not out.optimal

    def test_probes_recorded(self):
        out = search_min_cycles(_oracle(3), 1, 8)
        assert all(isinstance(p, Probe) for p in out.probes)
        assert len(out.probes) >= 3


class TestUnknownProbes:
    """Regression tests for the ``sat is None`` paths.

    An unknown probe (solver budget or deadline exhausted) must never be
    counted as an UNSAT floor, and optimality must never be claimed when
    the budget just below the best SAT was skipped or unknown.
    """

    def test_unknown_gap_never_claims_optimal(self):
        # Binary search skips across the unknown budgets 4 and 5 and
        # still finds the optimum at 6 — but with K=5 unrefuted it must
        # not claim the proof.
        calls = []
        out = search_min_cycles(
            _oracle(6, record=calls, unknown_at={4, 5}), 1, 12
        )
        assert out.best_cycles == 6
        assert not out.optimal
        assert out.proved_floor == 3
        # The unknown probes were actually attempted, not silently skipped.
        assert {4, 5} <= set(calls)

    def test_unknown_below_refuted_floor_is_still_optimal(self):
        # K=4 is unknown but K=5 is explicitly refuted, so best=6 is
        # proved optimal by monotonicity regardless of the gap below.
        out = search_min_cycles(_oracle(6, unknown_at={4}), 1, 12)
        assert out.best_cycles == 6
        assert out.proved_floor == 5
        assert out.optimal

    def test_all_unknown(self):
        out = search_min_cycles(_oracle(100, unknown_at=set(range(1, 13))), 1, 12)
        assert out.best_cycles is None
        assert out.best_payload is None
        assert out.proved_floor == 0
        assert not out.optimal

    def test_linear_unknown_is_not_a_floor(self):
        out = search_min_cycles(
            _oracle(5, unknown_at={4}), 1, 12, SearchStrategy.LINEAR
        )
        assert out.best_cycles == 5
        assert out.proved_floor == 3
        assert not out.optimal

    def test_linear_unknown_bridged_by_later_unsat(self):
        out = search_min_cycles(
            _oracle(5, unknown_at={3}), 1, 12, SearchStrategy.LINEAR
        )
        assert out.best_cycles == 5
        assert out.proved_floor == 4  # K=4's explicit refutation
        assert out.optimal


def _portfolio_oracle(threshold, unknown_at=()):
    """A thread-safe oracle for the portfolio scheduler (takes a token)."""

    def probe(k, cancel=None):
        if k in unknown_at:
            return None, None, Probe(cycles=k, satisfiable=None)
        sat = k >= threshold
        payload = ("model", k) if sat else None
        return sat, payload, Probe(cycles=k, satisfiable=sat)

    return probe


class TestPortfolioSearch:
    @pytest.mark.parametrize("threshold", [1, 3, 5, 8, 12])
    def test_matches_sequential_result(self, threshold):
        out = search_min_cycles(
            _portfolio_oracle(threshold), 1, 12, SearchStrategy.PORTFOLIO
        )
        seq = search_min_cycles(_oracle(threshold), 1, 12)
        assert out.best_cycles == seq.best_cycles == threshold
        assert out.best_payload == ("model", threshold)
        assert out.optimal

    def test_all_unsat(self):
        out = search_min_cycles(
            _portfolio_oracle(100), 1, 8, SearchStrategy.PORTFOLIO
        )
        assert out.best_cycles is None
        assert out.proved_floor == 8

    def test_unknown_gap_never_claims_optimal(self):
        out = search_min_cycles(
            _portfolio_oracle(6, unknown_at={5}), 1, 12,
            SearchStrategy.PORTFOLIO,
        )
        assert out.best_cycles == 6
        assert not out.optimal

    def test_single_budget_falls_back_to_sequential(self):
        out = search_min_cycles(
            _portfolio_oracle(3), 3, 3, SearchStrategy.PORTFOLIO
        )
        assert out.best_cycles == 3
        assert out.optimal

    def test_cancels_losers_above_sat_answer(self):
        threshold = 2
        started = set()
        start_lock = threading.Lock()

        def probe(k, cancel=None):
            with start_lock:
                started.add(k)
            if k <= threshold:
                sat = k >= threshold
                payload = ("model", k) if sat else None
                return sat, payload, Probe(cycles=k, satisfiable=sat)
            # Expensive large-budget probes: spin until cancelled.
            deadline = time.time() + 5.0
            while not (cancel is not None and cancel()):
                if time.time() > deadline:  # pragma: no cover - safety net
                    pytest.fail("probe at K=%d was never cancelled" % k)
                time.sleep(0.001)
            return None, None, Probe(cycles=k, satisfiable=None)

        out = PortfolioScheduler(max_workers=8).search(probe, 1, 8)
        assert out.best_cycles == 2
        assert out.optimal  # K=1 was explicitly refuted
        # Every losing budget was cancelled — whether pre-empted before
        # its worker started or interrupted mid-probe via its token.
        cancelled = {p.cycles for p in out.probes if p.cancelled}
        assert cancelled == set(range(threshold + 1, 9))
        assert all(k <= threshold or k in cancelled for k in started)

    def test_slow_small_sat_budget_still_wins(self):
        # K=3 answers SAT instantly; K=2 is SAT but slow.  The minimum
        # must still be 2 — a faster larger budget never steals the win.
        def probe(k, cancel=None):
            if k == 2:
                time.sleep(0.05)
            sat = k >= 2
            payload = ("model", k) if sat else None
            return sat, payload, Probe(cycles=k, satisfiable=sat)

        out = PortfolioScheduler(max_workers=3).search(probe, 1, 3)
        assert out.best_cycles == 2
        assert out.best_payload == ("model", 2)
        assert out.optimal


class TestCancelToken:
    def test_starts_clear_and_latches(self):
        token = CancelToken()
        assert not token.is_set()
        assert not token()
        token.cancel()
        assert token.is_set()
        assert token()  # callable form, as the solver's stop_check


class TestLinearSearch:
    def test_finds_minimum(self):
        calls = []
        out = search_min_cycles(
            _oracle(4, record=calls), 1, 12, SearchStrategy.LINEAR
        )
        assert out.best_cycles == 4
        assert calls == [1, 2, 3, 4]
        assert out.optimal

    def test_stops_at_hi(self):
        out = search_min_cycles(_oracle(100), 1, 5, SearchStrategy.LINEAR)
        assert out.best_cycles is None
        assert out.proved_floor == 5


class TestValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            search_min_cycles(_oracle(1), 0, 5)
        with pytest.raises(ValueError):
            search_min_cycles(_oracle(1), 5, 4)


class TestPublicSurface:
    """The probe module's public names are load-bearing API.

    The session, the backend race, the service and the extraction stage
    all import from ``repro.core.probes``; these assertions pin the
    names and the record schemas so a refactor that renames or drops
    one fails here first, not in a consumer.
    """

    def test_module_exports(self):
        import repro.core.probes as probes

        for name in (
            "Probe",
            "SearchOutcome",
            "SearchStrategy",
            "CancelToken",
            "ProbeScheduler",
            "LinearScheduler",
            "BinaryScheduler",
            "PortfolioScheduler",
            "BackendRace",
            "RaceEntry",
            "get_scheduler",
            "search_min_cycles",
        ):
            assert hasattr(probes, name), name

    def test_strategy_values_are_the_cli_choices(self):
        assert {s.value for s in SearchStrategy} == {
            "binary", "linear", "portfolio"
        }

    def test_probe_to_dict_schema(self):
        probe = Probe(cycles=3, satisfiable=True)
        record = probe.to_dict()
        assert {
            "cycles", "satisfiable", "vars", "clauses", "conflicts",
            "propagations", "time_seconds", "encode_seconds",
            "solve_seconds", "extract_seconds", "prefix_cycles_reused",
            "learned", "learned_reused", "solver", "cancelled",
        } <= set(record)
        assert record["cycles"] == 3 and record["satisfiable"] is True

    def test_get_scheduler_dispatch(self):
        from repro.core.probes import (
            BinaryScheduler,
            LinearScheduler,
            get_scheduler,
        )

        assert isinstance(
            get_scheduler(SearchStrategy.BINARY), BinaryScheduler
        )
        assert isinstance(
            get_scheduler(SearchStrategy.LINEAR), LinearScheduler
        )
        portfolio = get_scheduler(SearchStrategy.PORTFOLIO, max_workers=2)
        assert isinstance(portfolio, PortfolioScheduler)
        assert portfolio.max_workers == 2

    def test_backend_race_first_verified_wins_and_cancels(self):
        from repro.core.probes import BackendRace, RaceEntry

        def fast(token):
            return RaceEntry(name="fast", verified=True, cycles=3)

        def slow(token):
            deadline = time.time() + 5.0
            while not token() and time.time() < deadline:
                time.sleep(0.001)
            return RaceEntry(
                name="slow", verified=False, cycles=None, cancelled=token()
            )

        winner, entries = BackendRace().run(
            [("fast", fast), ("slow", slow)]
        )
        assert winner == "fast"
        assert entries["slow"].cancelled

    def test_backend_race_no_contestants(self):
        from repro.core.probes import BackendRace

        assert BackendRace().run([]) == (None, {})
