"""Tests for the cycle-budget search."""

import pytest

from repro.core.search import (
    Probe,
    SearchOutcome,
    SearchStrategy,
    search_min_cycles,
)


def _oracle(threshold, record=None, unknown_at=()):
    """A probe that is SAT iff k >= threshold."""

    def probe(k):
        if record is not None:
            record.append(k)
        if k in unknown_at:
            return None, None, Probe(cycles=k, satisfiable=None)
        sat = k >= threshold
        return sat, ("model", k) if sat else None, Probe(cycles=k, satisfiable=sat)

    return probe


class TestBinarySearch:
    @pytest.mark.parametrize("threshold", [1, 3, 5, 8, 12])
    def test_finds_minimum(self, threshold):
        out = search_min_cycles(_oracle(threshold), 1, 12)
        assert out.best_cycles == threshold
        assert out.best_payload == ("model", threshold)

    @pytest.mark.parametrize("threshold", [2, 5, 9])
    def test_proves_optimality(self, threshold):
        out = search_min_cycles(_oracle(threshold), 1, 12)
        assert out.optimal
        assert out.proved_floor == threshold - 1

    def test_all_unsat(self):
        out = search_min_cycles(_oracle(100), 1, 12)
        assert out.best_cycles is None
        assert out.proved_floor == 12

    def test_all_sat(self):
        out = search_min_cycles(_oracle(1), 1, 12)
        assert out.best_cycles == 1
        assert out.optimal  # floor is lo-1 = 0

    def test_probe_count_logarithmic(self):
        calls = []
        search_min_cycles(_oracle(7, record=calls), 1, 64)
        assert len(calls) <= 8

    def test_unknown_probes_degrade_gracefully(self):
        out = search_min_cycles(_oracle(5, unknown_at={4}), 1, 12)
        assert out.best_cycles == 5
        # Optimality cannot be claimed: K=4 was never refuted.
        assert not out.optimal

    def test_probes_recorded(self):
        out = search_min_cycles(_oracle(3), 1, 8)
        assert all(isinstance(p, Probe) for p in out.probes)
        assert len(out.probes) >= 3


class TestLinearSearch:
    def test_finds_minimum(self):
        calls = []
        out = search_min_cycles(
            _oracle(4, record=calls), 1, 12, SearchStrategy.LINEAR
        )
        assert out.best_cycles == 4
        assert calls == [1, 2, 3, 4]
        assert out.optimal

    def test_stops_at_hi(self):
        out = search_min_cycles(_oracle(100), 1, 5, SearchStrategy.LINEAR)
        assert out.best_cycles is None
        assert out.proved_floor == 5


class TestValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            search_min_cycles(_oracle(1), 0, 5)
        with pytest.raises(ValueError):
            search_min_cycles(_oracle(1), 5, 4)
