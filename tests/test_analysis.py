"""Tests for E-graph analyses (ways-of-computing, dataflow depth)."""


from repro import EGraph, const, default_registry, ev6, inp, mk
from repro.axioms import math_axioms
from repro.egraph.analysis import count_ways, min_depth
from repro.matching import SaturationConfig, saturate


class TestCountWays:
    def test_leaf_is_one_way(self):
        eg = EGraph()
        c = eg.add_term(inp("a"))
        assert count_ways(eg, c) == 1

    def test_single_application(self):
        eg = EGraph()
        c = eg.add_term(mk("add64", inp("a"), inp("b")))
        assert count_ways(eg, c) == 1

    def test_two_alternatives(self):
        eg = EGraph()
        c1 = eg.add_term(mk("mul64", inp("a"), const(2)))
        c2 = eg.add_term(mk("sll", inp("a"), const(1)))
        eg.merge(c1, c2)
        assert count_ways(eg, c1) == 2

    def test_ways_multiply_through_arguments(self):
        eg = EGraph()
        inner1 = eg.add_term(mk("mul64", inp("a"), const(2)))
        inner2 = eg.add_term(mk("sll", inp("a"), const(1)))
        eg.merge(inner1, inner2)
        outer = eg.add_term(mk("not64", mk("mul64", inp("a"), const(2))))
        assert count_ways(eg, outer) == 2

    def test_machine_op_filter(self):
        spec = ev6()
        eg = EGraph()
        c1 = eg.add_term(mk("mul64", inp("a"), const(4)))
        c2 = eg.add_term(mk("pow", inp("a"), const(9)))  # pow: not machine
        eg.merge(c1, c2)
        assert count_ways(eg, c1) == 2
        assert count_ways(eg, c1, is_computable_op=spec.is_machine_op) == 1

    def test_cyclic_class_not_counted(self):
        # x = x + 0 puts an add64 node whose argument is its own class.
        eg = EGraph()
        x = eg.add_term(inp("x"))
        plus0 = eg.add_term(mk("add64", inp("x"), const(0)))
        eg.merge(x, plus0)
        # Only the input derivation counts: a derivation of x may not
        # contain x itself, so add64(x, 0) is excluded.
        assert count_ways(eg, x) == 1

    def test_cap_saturates(self):
        reg = default_registry()
        eg = EGraph()
        t = inp("v0")
        for i in range(1, 6):
            t = mk("add64", t, inp("v%d" % i))
        goal = eg.add_term(t)
        saturate(eg, math_axioms(reg).relevant_to({"add64"}), reg,
                 SaturationConfig(max_rounds=20, max_enodes=8000))
        assert count_ways(eg, goal, cap=100) == 100

    def test_paper_claim_over_100_ways(self):
        reg = default_registry()
        eg = EGraph()
        t = inp("a")
        for n in "bcde":
            t = mk("add64", t, inp(n))
        goal = eg.add_term(t)
        stats = saturate(
            eg,
            math_axioms(reg).relevant_to({"add64"}),
            reg,
            SaturationConfig(max_rounds=20, max_enodes=8000),
        )
        assert stats.quiescent
        assert count_ways(eg, goal) > 100


class TestMinDepth:
    def _latency(self, spec):
        return lambda op: spec.latency(op) if spec.is_machine_op(op) else None

    def test_leaf_depth_zero(self):
        eg = EGraph()
        c = eg.add_term(inp("a"))
        assert min_depth(eg, c, self._latency(ev6())) == 0

    def test_chain_depth(self):
        eg = EGraph()
        c = eg.add_term(
            mk("add64", mk("add64", inp("a"), inp("b")), inp("c"))
        )
        assert min_depth(eg, c, self._latency(ev6())) == 2

    def test_latency_counts(self):
        eg = EGraph()
        c = eg.add_term(mk("mul64", inp("a"), inp("b")))
        assert min_depth(eg, c, self._latency(ev6())) == 7

    def test_alternative_lowers_depth(self):
        eg = EGraph()
        mul = eg.add_term(mk("mul64", inp("a"), const(2)))
        assert min_depth(eg, mul, self._latency(ev6())) == 7
        shift = eg.add_term(mk("sll", inp("a"), const(1)))
        eg.merge(mul, shift)
        assert min_depth(eg, mul, self._latency(ev6())) == 1

    def test_uncomputable_is_none(self):
        eg = EGraph()
        c = eg.add_term(mk("pow", inp("a"), inp("b")))
        assert min_depth(eg, c, self._latency(ev6())) is None

    def test_free_classes_cost_zero(self):
        eg = EGraph()
        t = eg.add_term(mk("not64", inp("a")))
        a_class = eg.add_term(inp("a"))
        assert (
            min_depth(eg, t, self._latency(ev6()), free={eg.find(a_class)})
            == 1
        )

    def test_depth_is_schedule_lower_bound(self):
        """min_depth never exceeds what the SAT search finds."""
        from repro import Denali, DenaliConfig, simple_risc

        term = mk(
            "bis",
            mk("add64", mk("sll", inp("a"), const(2)), inp("b")),
            inp("c"),
        )
        den = Denali(simple_risc(), config=DenaliConfig(max_cycles=8))
        result = den.compile_term(term)
        eg = result.egraph
        spec = simple_risc()
        lower = min_depth(
            eg,
            result.goal_classes[0],
            self._latency(spec),
            free={
                eg.find(eg.add_term(inp(v))) for v in ("a", "b", "c")
            },
        )
        assert lower is not None
        assert lower <= result.cycles


class TestExtractBest:
    def _spec_cost(self):
        spec = ev6()
        return lambda op: spec.latency(op) if spec.is_machine_op(op) else None

    def test_extracts_single_node(self):
        from repro.egraph.analysis import extract_best

        eg = EGraph()
        c = eg.add_term(mk("add64", inp("a"), inp("b")))
        term, cost = extract_best(eg, c, self._spec_cost())
        assert term is mk("add64", inp("a"), inp("b"))
        assert cost == 1.0

    def test_prefers_cheaper_alternative(self):
        from repro.egraph.analysis import extract_best

        eg = EGraph()
        mul = eg.add_term(mk("mul64", inp("a"), const(2)))  # latency 7
        shift = eg.add_term(mk("sll", inp("a"), const(1)))  # latency 1
        eg.merge(mul, shift)
        term, cost = extract_best(eg, mul, self._spec_cost())
        assert term.op == "sll"
        assert cost == 1.0

    def test_fig2_extracts_s4addq(self):
        from repro.egraph.analysis import extract_best
        from repro.axioms import (alpha_axioms, constant_synthesis_axioms,
                                  math_axioms)

        reg = default_registry()
        eg = EGraph()
        goal = eg.add_term(
            mk("add64", mk("mul64", inp("a"), const(4)), const(1))
        )
        saturate(
            eg,
            math_axioms(reg) + constant_synthesis_axioms(reg) + alpha_axioms(reg),
            reg,
        )
        term, cost = extract_best(eg, goal, self._spec_cost())
        assert term.op == "s4addq"
        assert cost == 1.0

    def test_uncomputable_returns_none(self):
        from repro.egraph.analysis import extract_best

        eg = EGraph()
        c = eg.add_term(mk("pow", inp("a"), inp("b")))
        assert extract_best(eg, c, self._spec_cost()) is None

    def test_extracted_term_is_equivalent(self):
        """Extraction preserves semantics: the cheapest term evaluates to
        the same values as the original."""
        from repro.egraph.analysis import extract_best
        from repro.axioms import (alpha_axioms, constant_synthesis_axioms,
                                  math_axioms)
        from repro.terms import evaluate

        reg = default_registry()
        original = mk("add64", mk("mul64", inp("a"), const(8)), inp("b"))
        eg = EGraph()
        goal = eg.add_term(original)
        saturate(
            eg,
            math_axioms(reg) + constant_synthesis_axioms(reg) + alpha_axioms(reg),
            reg,
        )
        term, _cost = extract_best(eg, goal, self._spec_cost())
        for a, b in [(0, 0), (3, 5), (2**63, 1), ((1 << 64) - 1, 7)]:
            env = {"a": a, "b": b}
            assert evaluate(term, env) == evaluate(original, env)

    def test_cost_counts_tree_occurrences(self):
        from repro.egraph.analysis import extract_best

        eg = EGraph()
        shared = mk("add64", inp("a"), inp("b"))
        c = eg.add_term(mk("and64", shared, shared))
        _term, cost = extract_best(eg, c, self._spec_cost())
        assert cost == 3.0  # and64 + two charged occurrences of the add
