"""Property-based tests: clause sanitisation and canonical model decode.

Two invariants the differential fuzzing harness leans on, checked
directly with hypothesis-generated inputs:

* :func:`repro.encode.constraints.sanitize_clauses` is a semantic no-op
  (it preserves the satisfying-assignment set) that is idempotent,
  removes tautologies/duplicate literals, and rejects literals outside
  the declared variable space;
* :class:`repro.sat.solver.CdclSolver` with ``canonical_model=True``
  returns the lexicographically least satisfying assignment, so the
  model — and everything decoded from it — is independent of clause
  order, literal order, and solver history.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encode.constraints import EncodeError, sanitize_clauses
from repro.sat import CNF, CdclSolver

import pytest


def _clauses(max_vars=6, max_clauses=10, max_len=4):
    lits = st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(lits, min_size=1, max_size=max_len)
    return st.lists(clause, min_size=0, max_size=max_clauses)


def _models(clauses, num_vars):
    """All satisfying assignments, as lex-ordered True/False tuples."""
    out = []
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for cl in clauses:
            if not any(
                bits[abs(l) - 1] == (l > 0) for l in cl
            ):
                ok = False
                break
        if ok:
            out.append(bits)
    return out


class TestSanitizeClauses:
    @given(_clauses())
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, clauses):
        once = sanitize_clauses(clauses, 6)
        assert sanitize_clauses(once, 6) == once

    @given(_clauses())
    @settings(max_examples=60, deadline=None)
    def test_output_is_clean(self, clauses):
        for cl in sanitize_clauses(clauses, 6):
            assert len(set(cl)) == len(cl)  # no duplicate literals
            assert not any(-l in cl for l in cl)  # no tautologies

    @given(_clauses(max_vars=4), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_preserves_model_set(self, clauses, extra):
        """Sanitisation never changes which assignments satisfy the CNF."""
        num_vars = 4 + extra
        before = _models(clauses, num_vars)
        after = _models(sanitize_clauses(clauses, num_vars), num_vars)
        assert before == after

    def test_tautologies_are_dropped(self):
        assert sanitize_clauses([[1, -1], [2, 3, -2]], 3) == []

    def test_duplicates_are_merged(self):
        assert sanitize_clauses([[2, 2, -1, 2]], 2) == [[2, -1]]

    @pytest.mark.parametrize("bad", [[[0]], [[1, 7]], [[-7]]])
    def test_out_of_range_literal_raises(self, bad):
        with pytest.raises(EncodeError):
            sanitize_clauses(bad, 6)


def _build_cnf(clauses, num_vars):
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for cl in clauses:
        cnf.add_clause(cl)
    return cnf


class TestCanonicalModel:
    @given(_clauses(max_vars=5, max_clauses=12))
    @settings(max_examples=40, deadline=None)
    def test_model_is_lexicographically_least(self, clauses):
        num_vars = 5
        cnf = _build_cnf(clauses, num_vars)
        res = CdclSolver().solve(cnf, canonical_model=True)
        models = _models(clauses, num_vars)
        if not models:
            assert res.satisfiable is False
            return
        assert res.satisfiable is True
        got = tuple(res.model[v] for v in range(1, num_vars + 1))
        assert got == models[0]  # itertools.product yields in lex order

    @given(_clauses(max_vars=6, max_clauses=14), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_permutation(self, clauses, seed):
        """Permuting clause and literal order never changes the model."""
        num_vars = 6
        baseline = CdclSolver().solve(
            _build_cnf(clauses, num_vars), canonical_model=True
        )
        rng = random.Random(seed)
        shuffled = [list(cl) for cl in clauses]
        rng.shuffle(shuffled)
        for cl in shuffled:
            rng.shuffle(cl)
        permuted = CdclSolver().solve(
            _build_cnf(shuffled, num_vars), canonical_model=True
        )
        assert permuted.satisfiable == baseline.satisfiable
        if baseline.satisfiable:
            assert permuted.model == baseline.model
