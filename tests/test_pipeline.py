"""Integration tests: the full Denali pipeline on small problems.

These are the paper's flow (Figure 1) end to end, checked three ways every
time: the SAT search's claimed cycle count, the timing simulator, and the
differential checker against the GMA's reference semantics.
"""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    GMA,
    SearchStrategy,
    const,
    ev6,
    inp,
    mk,
    simple_risc,
)
from repro.matching import SaturationConfig
from repro.sim import simulate_timing
from repro.terms import Sort


def _config(**kwargs):
    defaults = dict(
        min_cycles=1,
        max_cycles=8,
        strategy=SearchStrategy.BINARY,
        saturation=SaturationConfig(max_rounds=10, max_enodes=2000),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


class TestFigure2:
    """reg6*4+1: the paper's matching walkthrough, compiled."""

    def test_single_instruction_on_simple_risc(self):
        den = Denali(simple_risc(), config=_config())
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        assert res.cycles == 1
        assert res.optimal
        assert res.verified
        assert res.schedule.instructions[0].mnemonic == "s4addq"

    def test_single_instruction_on_ev6(self):
        den = Denali(ev6(), config=_config())
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        assert res.cycles == 1
        assert res.schedule.instruction_count() == 1

    def test_without_axioms_needs_multiply(self):
        from repro.axioms import AxiomSet

        den = Denali(simple_risc(), axioms=AxiomSet(), config=_config(max_cycles=10))
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        # mulq latency 7 + add: 8 cycles; the axioms are worth 7 cycles.
        assert res.cycles == 8
        assert res.verified


class TestDoubling:
    def test_times_two_is_add(self):
        den = Denali(simple_risc(), config=_config())
        res = den.compile_term(mk("mul64", inp("a"), const(2)))
        assert res.cycles == 1
        assert res.verified
        assert res.schedule.instructions[0].mnemonic in ("addq", "sll", "s4addq")

    def test_times_sixteen_is_shift(self):
        den = Denali(simple_risc(), config=_config())
        res = den.compile_term(mk("mul64", inp("a"), const(16)))
        assert res.cycles == 1
        assert res.schedule.instructions[0].mnemonic == "sll"


class TestMultiGoal:
    def test_two_targets(self):
        den = Denali(ev6(), config=_config())
        gma = GMA(
            ("x", "y"),
            (
                mk("add64", inp("a"), inp("b")),
                mk("sub64", inp("a"), inp("b")),
            ),
        )
        res = den.compile_gma(gma)
        assert res.cycles == 1  # quad issue: both in one cycle
        assert res.verified

    def test_register_swap_is_free(self):
        """(a, b) := (b, a): the values already exist; no instructions."""
        den = Denali(ev6(), config=_config())
        res = den.compile_gma(GMA(("a", "b"), (inp("b"), inp("a"))))
        assert res.cycles == 1
        assert res.schedule.instruction_count() == 0
        assert [op.register for op in res.schedule.goal_operands] == [
            "$17",
            "$16",
        ]

    def test_shared_subexpression_computed_once(self):
        den = Denali(simple_risc(), config=_config())
        shared = mk("add64", inp("a"), inp("b"))
        gma = GMA(
            ("x", "y"),
            (mk("sll", shared, const(1)), mk("srl", shared, const(1))),
        )
        res = den.compile_gma(gma)
        assert res.verified
        adds = [
            i for i in res.schedule.instructions if i.mnemonic == "addq"
        ]
        assert len(adds) == 1  # optimal CSE (section 1.1's promise)


class TestGuarded:
    def test_guard_is_computed(self):
        den = Denali(ev6(), config=_config())
        gma = GMA(
            ("s",),
            (mk("add64", inp("s"), inp("v")),),
            guard=mk("cmpult", inp("p"), inp("r")),
        )
        res = den.compile_gma(gma)
        assert res.verified
        assert any(
            i.mnemonic == "cmpult" for i in res.schedule.instructions
        )

    def test_guarded_memory_read_waits(self):
        den = Denali(ev6(), config=_config(max_cycles=10))
        gma = GMA(
            ("s",),
            (mk("select", inp("M", Sort.MEM), inp("p")),),
            guard=mk("cmpult", inp("p"), inp("r")),
        )
        res = den.compile_gma(gma)
        assert res.verified
        guard_instr = next(
            i for i in res.schedule.instructions if i.mnemonic == "cmpult"
        )
        load = next(i for i in res.schedule.instructions if i.mnemonic == "ldq")
        assert guard_instr.cycle < load.cycle


class TestMemory:
    def test_store_roundtrip(self):
        den = Denali(ev6(), config=_config())
        m = inp("M", Sort.MEM)
        gma = GMA(
            ("M",),
            (mk("store", m, inp("p"), mk("add64", inp("x"), const(1))),),
        )
        res = den.compile_gma(gma)
        assert res.verified

    def test_copy_element(self):
        """M[p] := M[q] — the heart of the section 3 copy loop."""
        den = Denali(ev6(), config=_config(max_cycles=10))
        m = inp("M", Sort.MEM)
        gma = GMA(
            ("M",),
            (mk("store", m, inp("p"), mk("select", m, inp("q"))),),
        )
        res = den.compile_gma(gma)
        assert res.verified
        assert res.cycles == 4  # ldq (3) then stq (1)


class TestResultPlumbing:
    def test_timing_validates_every_result(self):
        den = Denali(ev6(), config=_config())
        res = den.compile_term(
            mk("bis", mk("sll", inp("a"), const(2)), inp("b"))
        )
        report = simulate_timing(res.schedule, ev6())
        assert report.ok, report.violations

    def test_probe_statistics_recorded(self):
        den = Denali(simple_risc(), config=_config())
        res = den.compile_term(mk("add64", inp("a"), inp("b")))
        assert res.search.probes
        assert all(p.vars > 0 for p in res.search.probes)

    def test_no_schedule_within_budget(self):
        den = Denali(simple_risc(), config=_config(min_cycles=1, max_cycles=3))
        res = den.compile_term(mk("mul64", inp("a"), inp("b")))  # needs 7
        assert res.schedule is None
        assert res.cycles is None
        assert "no schedule" in res.summary()
        with pytest.raises(ValueError):
            _ = res.assembly

    def test_assembly_render_mentions_register_map(self):
        den = Denali(ev6(), config=_config())
        res = den.compile_term(mk("add64", inp("a"), inp("b")))
        assert "Register Map" in res.assembly

    def test_input_register_override(self):
        den = Denali(ev6(), config=_config())
        res = den.compile_gma(
            GMA(("x",), (mk("add64", inp("a"), const(1)),)),
            input_registers={"a": "$9"},
        )
        assert res.schedule.register_map["a"] == "$9"
        assert res.verified

    def test_elapsed_time_recorded(self):
        den = Denali(simple_risc(), config=_config())
        res = den.compile_term(mk("add64", inp("a"), inp("b")))
        assert res.elapsed_seconds > 0


class TestSearchStrategies:
    @pytest.mark.parametrize(
        "strategy", [SearchStrategy.BINARY, SearchStrategy.LINEAR]
    )
    def test_same_minimum_found(self, strategy):
        den = Denali(
            simple_risc(), config=_config(strategy=strategy, max_cycles=6)
        )
        res = den.compile_term(
            mk("bis", mk("add64", inp("a"), inp("b")), inp("c"))
        )
        assert res.cycles == 2
        assert res.optimal
