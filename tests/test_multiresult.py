"""Tests for multi-result instruction modelling (paper section 7).

"Some instructions of some architectures compute multiple results into
multiple registers.  In this situation we model the instruction's
operation as a machine operation that computes a tuple of the various
results.  We also introduce into the axiom files non-machine projection
operations that extract the individual components of the tuple."

The toy architecture's ``tuple2`` computes (a+b, a-b) ... actually it
computes the pair of its operands' combination; what matters for the
modelling is the dataflow: the tuple value lives in one (modelled)
destination, and projection pseudo-ops extract components.
"""

import pytest

from repro import Denali, DenaliConfig, GMA, const, inp, mk
from repro.isa.alpha import toy_tuple_machine
from repro.matching import SaturationConfig
from repro.sim import execute_schedule, simulate_timing


def _config(**kwargs):
    defaults = dict(
        min_cycles=1,
        max_cycles=8,
        saturation=SaturationConfig(max_rounds=6, max_enodes=800),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


class TestTupleMachine:
    def test_projection_of_tuple_compiles(self):
        spec = toy_tuple_machine()
        term = mk("proj0", mk("tuple2", inp("a"), inp("b")))
        den = Denali(spec, config=_config())
        result = den.compile_gma(GMA(("\\res",), (term,)))
        assert result.schedule is not None
        mnemonics = [i.mnemonic for i in result.schedule.instructions]
        assert "pair" in mnemonics
        assert "lo" in mnemonics
        # tuple2 has latency 2, the projection 1: at least 3 cycles.
        assert result.cycles == 3
        assert result.optimal
        assert result.verified

    def test_both_projections_share_one_tuple(self):
        """Extracting both components launches the pair instruction once."""
        spec = toy_tuple_machine()
        pair = mk("tuple2", inp("a"), inp("b"))
        gma = GMA(
            ("x", "y"),
            (mk("proj0", pair), mk("proj1", pair)),
        )
        result = Denali(spec, config=_config()).compile_gma(gma)
        assert result.verified
        mnemonics = [i.mnemonic for i in result.schedule.instructions]
        assert mnemonics.count("pair") == 1
        assert "lo" in mnemonics and "hi" in mnemonics

    def test_tuple_values_flow_through_executor(self):
        spec = toy_tuple_machine()
        term = mk("proj1", mk("tuple2", inp("a"), inp("b")))
        result = Denali(spec, config=_config()).compile_gma(
            GMA(("\\res",), (term,))
        )
        state = execute_schedule(result.schedule, {"a": 11, "b": 22})
        goal = result.schedule.goal_operands[0]
        assert state.read(goal.register) == 22

    def test_timing_validates(self):
        spec = toy_tuple_machine()
        term = mk("proj0", mk("tuple2", inp("a"), const(5)))
        result = Denali(spec, config=_config()).compile_gma(
            GMA(("\\res",), (term,))
        )
        assert simulate_timing(result.schedule, spec).ok

    def test_tuple_not_machine_on_ev6(self):
        """On the EV6 (no tuple instruction) the goal is uncomputable."""
        from repro import ev6
        from repro.encode import EncodeError

        term = mk("proj0", mk("tuple2", inp("a"), inp("b")))
        den = Denali(ev6(), config=_config())
        with pytest.raises(EncodeError):
            den.compile_gma(GMA(("\\res",), (term,)))
