"""Tests for the brute-force superoptimizer and the conventional compiler."""

import pytest

from repro import GMA, Memory, Sort, const, ev6, inp, mk, simple_risc
from repro.baselines import (
    brute_force_search,
    compile_conventional,
    default_repertoire,
)
from repro.baselines.bruteforce import goal_from_term
from repro.baselines.compiler import CompileError
from repro.sim import execute_schedule, simulate_timing
from repro.terms import default_registry
from repro.verify import check_schedule


class TestBruteForce:
    def test_identity_like_goal_found_quickly(self):
        goal = goal_from_term(mk("add64", inp("a"), const(1)), ["a"])
        res = brute_force_search(goal, 1, max_length=1, immediates=(0, 1))
        assert res.found
        assert res.length == 1

    def test_negation_needs_two_instructions(self):
        goal = goal_from_term(mk("sub64", const(0), inp("a")), ["a"])
        res = brute_force_search(
            goal,
            1,
            max_length=2,
            repertoire=["add64", "not64", "and64"],
            immediates=(0, 1),
        )
        assert res.found
        assert res.length == 2

    def test_found_program_is_correct(self):
        term = mk("bis", inp("a"), inp("b"))
        goal = goal_from_term(term, ["a", "b"])
        res = brute_force_search(
            goal, 2, max_length=1, repertoire=["bis", "and64", "xor64"]
        )
        assert res.found
        # Re-execute against fresh values.
        from repro.baselines.bruteforce import _execute

        reg = default_registry()
        fns = {op: reg.get(op).eval_fn for op in default_repertoire()}
        for a, b in [(1, 2), (0xFF00, 0x00FF), (2**63, 1)]:
            assert _execute(res.program, (a, b), fns) == a | b

    def test_not_found_within_length(self):
        # A 3-instruction goal cannot be found at max_length=1.
        term = mk("bis", mk("sll", inp("a"), const(1)),
                  mk("srl", inp("a"), const(1)))
        goal = goal_from_term(term, ["a"])
        res = brute_force_search(
            goal, 1, max_length=1, repertoire=["sll", "srl", "bis"],
            immediates=(1,),
        )
        assert not res.found
        assert res.sequences_tested > 0

    def test_sequence_budget_stops_search(self):
        goal = goal_from_term(mk("mul64", inp("a"), inp("a")), ["a"])
        res = brute_force_search(
            goal, 1, max_length=3, max_sequences=500,
            repertoire=["add64", "sll", "bis"],
        )
        assert not res.found
        assert res.sequences_tested <= 520

    def test_cost_grows_with_length(self):
        # Count enumerated sequences at increasing lengths for an
        # unsatisfiable goal: the growth is the paper's "glacially slow".
        goal = goal_from_term(mk("umulh", inp("a"), inp("a")), ["a"])
        counts = []
        for length in (1, 2):
            res = brute_force_search(
                goal, 1, max_length=length,
                repertoire=["add64", "xor64", "sll"], immediates=(1,),
            )
            counts.append(res.sequences_tested)
        assert counts[1] > counts[0] * 5

    def test_uninterpreted_repertoire_rejected(self):
        reg = default_registry()
        reg.declare("mystery", (Sort.INT,), Sort.INT)
        goal = goal_from_term(inp("a"), ["a"])
        with pytest.raises(ValueError):
            brute_force_search(
                goal, 1, repertoire=["mystery"], registry=reg
            )

    def test_render(self):
        goal = goal_from_term(mk("add64", inp("a"), const(1)), ["a"])
        res = brute_force_search(goal, 1, max_length=1, immediates=(0, 1))
        assert "a" in res.render(["a"])


class TestConventionalCompiler:
    def _roundtrip(self, term, spec=None, env=None):
        spec = spec or ev6()
        sched = compile_conventional(term, spec)
        report = simulate_timing(sched, spec)
        assert report.ok, report.violations
        state = execute_schedule(sched, env or {})
        goal = sched.goal_operands[0]
        if goal.literal is not None:
            return sched, goal.literal
        return sched, state.read(goal.register)

    def test_simple_expression(self):
        term = mk("add64", mk("sll", inp("a"), const(2)), inp("b"))
        sched, value = self._roundtrip(term, env={"a": 3, "b": 5})
        assert value == 17

    def test_strength_reduction(self):
        sched = compile_conventional(mk("mul64", inp("a"), const(8)), ev6())
        assert [i.mnemonic for i in sched.instructions] == ["sll"]

    def test_mul_by_one_elided(self):
        sched = compile_conventional(mk("mul64", inp("a"), const(1)), ev6())
        assert sched.instruction_count() == 0

    def test_mul_by_zero_folds(self):
        sched = compile_conventional(mk("mul64", inp("a"), const(0)), ev6())
        assert sched.instruction_count() == 0
        assert sched.goal_operands[0].register == "$31"

    def test_constant_folding(self):
        sched = compile_conventional(
            mk("add64", const(2), const(3)), ev6()
        )
        assert sched.instruction_count() == 0
        assert sched.goal_operands[0].literal == 5

    def test_large_constant_materialised(self):
        sched = compile_conventional(
            mk("add64", inp("a"), const(1 << 40)), ev6()
        )
        assert any(i.mnemonic == "ldiq" for i in sched.instructions)

    def test_cse_by_memoisation(self):
        shared = mk("add64", inp("a"), inp("b"))
        term = mk("and64", shared, mk("xor64", shared, inp("c")))
        sched = compile_conventional(term, ev6())
        adds = [i for i in sched.instructions if i.mnemonic == "addq"]
        assert len(adds) == 1

    def test_no_greedy_s4addq(self):
        """The rewriting engine misses s4addq — the paper's point."""
        term = mk("add64", mk("mul64", inp("a"), const(4)), const(1))
        sched = compile_conventional(term, ev6())
        mnemonics = [i.mnemonic for i in sched.instructions]
        assert "s4addq" not in mnemonics
        assert "sll" in mnemonics  # strength-reduced, but two instructions
        assert sched.cycles == 2

    def test_macro_expansion_of_definitions(self):
        from repro.axioms import checksum_axioms

        reg = default_registry()
        reg, axioms = checksum_axioms(reg)
        term = mk("add", inp("a"), inp("b"), registry=reg)
        sched = compile_conventional(
            term, ev6(), registry=reg, definitions=axioms.definitions()
        )
        report = simulate_timing(sched, ev6())
        assert report.ok
        state = execute_schedule(sched, {"a": (1 << 64) - 1, "b": 5})
        # ones-complement add with wraparound carry
        assert state.read(sched.goal_operands[0].register) == 5

    def test_non_machine_without_definition_rejected(self):
        reg = default_registry()
        reg.declare("mystery", (Sort.INT,), Sort.INT)
        term = mk("mystery", inp("a"), registry=reg)
        with pytest.raises(CompileError):
            compile_conventional(term, ev6(), registry=reg)

    def test_memory_gma(self):
        m = inp("M", Sort.MEM)
        gma = GMA(
            ("M",),
            (mk("store", m, inp("p"), mk("select", m, inp("q"))),),
        )
        sched = compile_conventional(gma, ev6())
        report = simulate_timing(sched, ev6())
        assert report.ok, report.violations
        mem = Memory().store(64, 77)
        state = execute_schedule(sched, {"p": 8, "q": 64, "M": mem})
        assert state.memory.select(8) == 77

    def test_checker_validates_conventional_output(self):
        term = mk("storeb", const(0), const(0), mk("selectb", inp("a"), const(3)))
        gma = GMA(("\\res",), (term,))
        sched = compile_conventional(gma, ev6())
        report = check_schedule(gma, sched)
        assert report.passed, report.failures

    def test_single_issue_schedules_longer(self):
        term = mk(
            "bis",
            mk("add64", inp("a"), inp("b")),
            mk("xor64", inp("c"), inp("d")),
        )
        wide = compile_conventional(term, ev6())
        narrow = compile_conventional(term, simple_risc())
        assert narrow.cycles >= wide.cycles
