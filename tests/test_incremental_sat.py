"""Tests for the persistent incremental SAT layer.

Unit tests exercise :class:`repro.sat.incremental.IncrementalSolver`
directly (budget selectors, learned-clause retention and retirement,
assumption handling, canonical models); the differential tests compile
the committed workloads both ways — one persistent solver per session
versus a fresh ``CdclSolver`` per probe — and require the same verdict
on every probe and byte-identical assembly.
"""

import itertools
import os
import random

import pytest

from repro.sat import CNF, CdclSolver, IncrementalSolver

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "workloads",
)


def _pigeonhole(solver, holes, sel, base):
    """Gate PHP(holes+1, holes) behind ``sel``: UNSAT, learns clauses.

    Variables ``base + p * holes + h`` mean "pigeon p sits in hole h".
    """
    pigeons = holes + 1
    def var(p, h):
        return base + p * holes + h

    solver.ensure_vars(var(pigeons - 1, holes - 1))
    for p in range(pigeons):
        solver.add_clause([-sel] + [var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-sel, -var(p1, h), -var(p2, h)])


class TestIncrementalSolver:
    def test_clauses_persist_across_solves(self):
        s = IncrementalSolver()
        s.ensure_vars(3)
        s.add_clause([1, 2])
        assert s.solve([-1]).satisfiable is True
        s.add_clause([-2])
        res = s.solve([-1])
        assert res.satisfiable is False  # both clauses still attached

    def test_learned_clauses_carry_over(self):
        s = IncrementalSolver()
        s.ensure_vars(1)
        sel = 1
        _pigeonhole(s, holes=4, sel=sel, base=1)
        first = s.solve([sel])
        assert first.satisfiable is False
        assert first.stats.learned > 0
        second = s.solve([sel])
        assert second.satisfiable is False
        assert second.stats.learned_kept > 0
        assert second.stats.conflicts <= first.stats.conflicts

    def test_assumption_conflict_early_exit(self):
        s = IncrementalSolver()
        s.ensure_vars(2)
        s.add_clause([1])
        # -1 contradicts the root-level unit: no search should happen.
        res = s.solve([-1])
        assert res.satisfiable is False
        assert res.stats.decisions == 0
        assert res.stats.conflicts == 0
        # Directly contradictory assumptions exit before any search:
        # enqueueing 2 counts as a decision, but no conflict analysis
        # or real branching ever runs.
        res = s.solve([2, -2])
        assert res.satisfiable is False
        assert res.stats.decisions <= 1
        assert res.stats.conflicts == 0

    def test_budget_selector_gating(self):
        s = IncrementalSolver()
        s.ensure_vars(4)
        s.add_clause([-3, 1])  # budget 1: x1 must hold
        s.add_clause([-4, -1])  # budget 2: x1 must not hold
        s.push_budget(1, 3)
        s.push_budget(2, 4)
        r1 = s.solve_budget(1)
        r2 = s.solve_budget(2)
        assert r1.satisfiable is True and r1.value(1) is True
        assert r2.satisfiable is True and r2.value(1) is False

    def test_unpushed_budget_rejected(self):
        s = IncrementalSolver()
        with pytest.raises(KeyError):
            s.solve_budget(3)
        with pytest.raises(ValueError):
            s.push_budget(1, -2)

    def test_retire_budget_drops_local_learnts(self):
        s = IncrementalSolver()
        s.ensure_vars(1)
        _pigeonhole(s, holes=4, sel=1, base=1)
        s.push_budget(1, 1)
        assert s.solve_budget(1).satisfiable is False
        kept = s.learnts
        dropped = s.retire_budget(1)
        # Learnt clauses from the gated probe mention the selector and
        # must go with it; retiring twice is a no-op.
        assert dropped > 0
        assert s.learnts == kept - dropped
        assert s.retire_budget(1) == 0
        # The selector is now false: assuming it is contradictory.
        assert s.solve([1]).satisfiable is False
        with pytest.raises(KeyError):
            s.solve_budget(1)
        with pytest.raises(ValueError):
            s.push_budget(1, 2)

    def test_root_unsat_latches(self):
        s = IncrementalSolver()
        s.ensure_vars(1)
        assert s.add_clause([1]) is True
        assert s.add_clause([-1]) is False
        assert s.root_unsat
        assert s.solve().satisfiable is False
        assert s.solve([1]).satisfiable is False

    def test_trusted_bulk_feed_matches_per_clause(self):
        clauses = [[1, 2, 3], [-1, 2], [-2, -3], [-1, -2, 3], [1, -3]]
        a, b = IncrementalSolver(), IncrementalSolver()
        a.ensure_vars(3)
        b.ensure_vars(3)
        a.add_clauses(clauses, trusted=True)
        for c in clauses:
            b.add_clause(c)
        ra = a.solve(canonical_model=True)
        rb = b.solve(canonical_model=True)
        assert ra.satisfiable is rb.satisfiable is True
        assert ra.model == rb.model


class TestCanonicalModel:
    def _lex_min_model(self, clauses, num_vars):
        for bits in itertools.product([False, True], repeat=num_vars):
            model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
            if all(
                any(model[abs(l)] == (l > 0) for l in c) for c in clauses
            ):
                return model
        return None

    def test_matches_brute_force_lex_min(self):
        clauses = [[1, 2], [-1, 3, 4], [2, -4, 5], [-3, -5], [4, 5, 6]]
        n = 6
        s = IncrementalSolver()
        s.ensure_vars(n)
        s.add_clauses(clauses)
        res = s.solve(canonical_model=True)
        assert res.satisfiable is True
        assert res.model == self._lex_min_model(clauses, n)

    def test_unaffected_by_solver_history(self):
        # The canonical model must not depend on activities, phases or
        # learnt clauses accumulated by unrelated earlier solves.
        clauses = [[1, 2], [-1, 3, 4], [2, -4, 5], [-3, -5], [4, 5, 6]]
        fresh = IncrementalSolver()
        fresh.ensure_vars(6)
        fresh.add_clauses(clauses)
        warm = IncrementalSolver()
        warm.ensure_vars(6)
        warm.add_clauses(clauses)
        for assumption in ([6], [-6], [5, 6], [-2]):
            warm.solve(assumption)
        assert (
            warm.solve(canonical_model=True).model
            == fresh.solve(canonical_model=True).model
        )

    def test_cdcl_facade_canonical_model(self):
        cnf = CNF()
        for _ in range(4):
            cnf.new_var()
        cnf.add(1, 2)
        cnf.add(-2, 3)
        cnf.add(-1, 4)
        res = CdclSolver().solve(cnf, canonical_model=True)
        assert res.satisfiable is True
        # x1=False forces nothing false-ward beyond x2=True, x3=True.
        assert res.model == {1: False, 2: True, 3: True, 4: False}


# -- differential: one solver per session vs one per probe --------------------


def _compile_workload(name, incremental, strategy="linear"):
    """Compile every GMA of a workload; returns (probe map, assemblies)."""
    from repro.axioms import (
        AxiomSet,
        alpha_axioms,
        constant_synthesis_axioms,
        math_axioms,
    )
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.core.probes import SearchStrategy
    from repro.isa import ev6
    from repro.lang import parse_program, translate_procedure
    from repro.matching import SaturationConfig

    with open(os.path.join(WORKLOAD_DIR, name)) as handle:
        prog = parse_program(handle.read())
    axioms = (
        math_axioms(prog.registry)
        + constant_synthesis_axioms(prog.registry)
        + alpha_axioms(prog.registry)
        + AxiomSet(prog.axioms, "program")
    )
    config = DenaliConfig(
        min_cycles=1,
        max_cycles=10,
        strategy=SearchStrategy(strategy),
        verify=False,
        enable_incremental_solver=incremental,
        saturation=SaturationConfig(max_rounds=8, max_enodes=2500),
    )
    den = Denali(ev6(), axioms=axioms, registry=prog.registry, config=config)
    verdicts, assemblies = {}, {}
    for proc in prog.procedures:
        for label, gma in translate_procedure(proc, prog.registry):
            result = den.compile_gma(gma, label=label)
            verdicts[label] = {
                p.cycles: p.satisfiable for p in result.stats.probes
            }
            assemblies[label] = (
                result.assembly if result.schedule is not None else None
            )
            # Probes pre-empted by the portfolio scheduler never ran a
            # solver; every probe that did must name the right one.
            expected = "incremental" if incremental else "scratch"
            assert all(
                p.solver == expected
                for p in result.stats.probes
                if not p.cancelled
            )
    return verdicts, assemblies


def _assert_agree(name, strategy="linear", compare_verdicts=True):
    v_inc, a_inc = _compile_workload(name, True, strategy)
    v_scr, a_scr = _compile_workload(name, False, strategy)
    if compare_verdicts:
        assert v_inc == v_scr, "probe verdicts diverged on %s" % name
    assert a_inc == a_scr, "assembly diverged on %s" % name
    assert all(asm is not None for asm in a_inc.values())


class TestDifferential:
    def test_fig2(self):
        _assert_agree("fig2.dn")

    def test_byteswap4(self):
        _assert_agree("byteswap4.dn")

    @pytest.mark.slow
    def test_checksum(self):
        _assert_agree("checksum.dn")

    @pytest.mark.slow
    def test_byteswap4_binary(self):
        _assert_agree("byteswap4.dn", strategy="binary")

    def test_fig2_portfolio(self):
        # The portfolio scheduler shares the session's one solver across
        # worker threads and cancels losers; cancellation order is
        # timing-dependent, so only the answers are compared.
        _assert_agree("fig2.dn", strategy="portfolio",
                      compare_verdicts=False)

    @pytest.mark.slow
    def test_checksum_portfolio(self):
        _assert_agree("checksum.dn", strategy="portfolio",
                      compare_verdicts=False)


class TestRetireDifferential:
    """Retiring earlier budgets must not perturb later-budget answers.

    A seeded random ladder: shared base clauses plus one gated clause
    group per budget.  The incremental solver probes budget ``k`` after
    retiring budgets ``1..k-1`` (which asserts their selectors false and
    drops their learnt clauses); a from-scratch solver sees only the
    base plus budget ``k``'s clauses, un-gated.  Verdicts must match,
    and on SAT the canonical models restricted to the problem variables
    must be byte-for-byte identical — selectors live above the problem
    variables, so the lex-least prefix is decided by the problem clauses
    alone.
    """

    N_VARS = 8

    def _random_group(self, rng, n_clauses=6):
        group = []
        for _ in range(n_clauses):
            size = rng.randint(1, 3)
            chosen = rng.sample(range(1, self.N_VARS + 1), size)
            group.append(
                [v if rng.random() < 0.5 else -v for v in chosen]
            )
        return group

    def _fresh_answer(self, clauses):
        cnf = CNF()
        for _ in range(self.N_VARS):
            cnf.new_var()
        for cl in clauses:
            cnf.add_clause(cl)
        return CdclSolver().solve(cnf, canonical_model=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_later_budgets_unaffected_by_retirement(self, seed):
        rng = random.Random(seed)
        base = self._random_group(rng, n_clauses=4)
        budgets = {k: self._random_group(rng) for k in range(1, 5)}

        inc = IncrementalSolver()
        inc.ensure_vars(self.N_VARS)
        for cl in base:
            inc.add_clause(cl)
        for k, group in budgets.items():
            sel = self.N_VARS + k
            inc.ensure_vars(sel)
            inc.push_budget(k, sel)
            for cl in group:
                inc.add_clause([-sel] + cl)

        for k in sorted(budgets):
            if k > 1:
                inc.retire_budget(k - 1)
            got = inc.solve_budget(k, canonical_model=True)
            want = self._fresh_answer(base + budgets[k])
            assert got.satisfiable == want.satisfiable, "budget %d" % k
            if want.satisfiable:
                def restrict(model):
                    return {
                        v: model[v] for v in range(1, self.N_VARS + 1)
                    }
                assert restrict(got.model) == restrict(want.model)

    def test_retire_after_unsat_probe_matches_fresh(self):
        """An UNSAT probe's learnt clauses die with its budget."""
        rng = random.Random(99)
        base = self._random_group(rng, n_clauses=3)
        group = self._random_group(rng)

        inc = IncrementalSolver()
        inc.ensure_vars(self.N_VARS)
        for cl in base:
            inc.add_clause(cl)
        sel1 = self.N_VARS + 1
        inc.ensure_vars(sel1)
        inc.push_budget(1, sel1)
        _pigeonhole(inc, holes=4, sel=sel1, base=sel1 + 1)
        assert inc.solve_budget(1).satisfiable is False

        sel2 = sel1 + 1 + 5 * 4  # above the pigeonhole variables
        inc.ensure_vars(sel2)
        inc.push_budget(2, sel2)
        for cl in group:
            inc.add_clause([-sel2] + cl)
        inc.retire_budget(1)
        with pytest.raises(KeyError):
            inc.solve_budget(1)

        got = inc.solve_budget(2, canonical_model=True)
        want = self._fresh_answer(base + group)
        assert got.satisfiable == want.satisfiable
        if want.satisfiable:
            for v in range(1, self.N_VARS + 1):
                assert got.model[v] == want.model[v]
