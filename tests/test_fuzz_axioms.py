"""Axiom soundness spot-checks: every built-in axiom on random values."""

from repro.axioms.axiom import (
    AxiomClause,
    AxiomDistinction,
    AxiomEquality,
    Pattern,
)
from repro.core.cache import global_axiom_cache
from repro.fuzz import check_axiom, check_axiom_set
from repro.terms.ops import default_registry

V = Pattern.variable
A = Pattern.apply


class TestBuiltinCorpus:
    def test_every_builtin_axiom_is_sound(self):
        """Spot-check the full math + Alpha + constant-synthesis corpus.

        Skips are failures too: every shipped axiom must be over
        evaluable operators, or the evaluator-based oracles could never
        have exercised it.
        """
        registry = default_registry()
        axioms = global_axiom_cache().default_corpus(registry)
        reports = check_axiom_set(axioms, registry, trials=24, seed=2)
        failed = [r for r in reports if r.failures]
        skipped = [r for r in reports if r.skipped]
        assert not failed, [
            (r.name, r.pretty, r.failures[0]) for r in failed
        ]
        assert not skipped, [(r.name, r.reason) for r in skipped]
        assert len(reports) > 100


class TestUnsoundAxiomsAreCaught:
    def test_wrong_equality(self):
        bogus = AxiomEquality(
            name="bogus-add-is-sub",
            variables=("x", "y"),
            triggers=(A("add64", V("x"), V("y")),),
            lhs=A("add64", V("x"), V("y")),
            rhs=A("sub64", V("x"), V("y")),
        )
        report = check_axiom(bogus, trials=32, seed=0)
        assert not report.passed
        assert report.failures

    def test_wrong_distinction(self):
        # x != x & x is false whenever... always: and64(x,x) == x.
        bogus = AxiomDistinction(
            name="bogus-distinct",
            variables=("x",),
            triggers=(A("and64", V("x"), V("x")),),
            lhs=A("and64", V("x"), V("x")),
            rhs=V("x"),
        )
        report = check_axiom(bogus, trials=8, seed=0)
        assert report.failures

    def test_wrong_clause(self):
        # Neither literal ever holds: x+1 != x and x != x+2 (mod 2^64).
        bogus = AxiomClause(
            name="bogus-clause",
            variables=("x",),
            triggers=(A("add64", V("x"), Pattern.constant(1)),),
            literals=(
                ("eq", A("add64", V("x"), Pattern.constant(1)), V("x")),
                ("eq", A("add64", V("x"), Pattern.constant(2)), V("x")),
            ),
        )
        report = check_axiom(bogus, trials=8, seed=0)
        assert report.failures

    def test_sound_handwritten_axioms_pass(self):
        commut = AxiomEquality(
            name="add-commutes",
            variables=("x", "y"),
            triggers=(A("add64", V("x"), V("y")),),
            lhs=A("add64", V("x"), V("y")),
            rhs=A("add64", V("y"), V("x")),
        )
        assert check_axiom(commut, trials=32, seed=5).passed

    def test_memory_axiom_compared_extensionally(self):
        select_store = AxiomEquality(
            name="select-of-store",
            variables=("m", "p", "v"),
            triggers=(A("store", V("m"), V("p"), V("v")),),
            lhs=A("select", A("store", V("m"), V("p"), V("v")), V("p")),
            rhs=V("v"),
        )
        assert check_axiom(select_store, trials=16, seed=3).passed

    def test_uninterpreted_op_is_skipped_not_passed(self):
        from repro.terms.ops import Sort

        registry = default_registry().copy()
        registry.declare("mystery", (Sort.INT, Sort.INT), Sort.INT)
        weird = AxiomEquality(
            name="about-mystery",
            variables=("x", "y"),
            triggers=(A("mystery", V("x"), V("y")),),
            lhs=A("mystery", V("x"), V("y")),
            rhs=A("mystery", V("y"), V("x")),
        )
        report = check_axiom(weird, registry=registry, trials=4, seed=0)
        assert report.skipped
        assert not report.passed
