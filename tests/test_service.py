"""Tests for the compilation service (jobs, pool, store, HTTP front end).

Fast tests exercise the machinery with diagnostic jobs (``sleep`` /
``crash``) and small compiles; the slow tier runs the ISSUE's acceptance
workloads end-to-end (batch throughput vs the one-shot CLI, warm-store
reruns).
"""

import os
import subprocess
import sys
import time

import pytest

from repro.service import (
    CompilationEngine,
    JobError,
    JobSpec,
    JobState,
    ResultStore,
    ServiceClient,
    ServiceServer,
    job_fingerprint,
    run_job,
)

SIMPLE = r"""
(\procdecl scale ((a long)) long
  (:= (\res (+ (* a 4) 1))))
"""

WORKLOAD_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "workloads",
)


def compile_spec(source=SIMPLE, **kwargs):
    defaults = dict(
        kind="compile",
        source=source,
        name="test.dn",
        strategy="linear",
        min_cycles=1,
        max_cycles=10,
        max_rounds=8,
        max_enodes=2500,
    )
    defaults.update(kwargs)
    return JobSpec(**defaults)


@pytest.fixture
def engine():
    eng = CompilationEngine(workers=1, max_retries=1, retry_backoff=0.05)
    yield eng
    eng.shutdown(drain=False)


# -- specs and fingerprints ----------------------------------------------------


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = compile_spec(proc="scale", timeout_seconds=5.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(JobError):
            JobSpec.from_dict({"kind": "compile", "bogus": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(JobError):
            JobSpec.from_dict(["not", "a", "dict"])


class TestFingerprint:
    def test_stable_across_calls(self):
        assert job_fingerprint(compile_spec()) == job_fingerprint(compile_spec())

    def test_ignores_display_name_and_timeout(self):
        a = compile_spec(name="a.dn", timeout_seconds=None)
        b = compile_spec(name="b.dn", timeout_seconds=9.0)
        assert job_fingerprint(a) == job_fingerprint(b)

    def test_sensitive_to_semantic_fields(self):
        base = job_fingerprint(compile_spec())
        assert job_fingerprint(compile_spec(source=SIMPLE + " ")) != base
        assert job_fingerprint(compile_spec(max_cycles=9)) != base
        assert job_fingerprint(compile_spec(arch="itanium")) != base

    def test_includes_package_version(self, monkeypatch):
        import repro

        base = job_fingerprint(compile_spec())
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert job_fingerprint(compile_spec()) != base


# -- the result store ----------------------------------------------------------


class TestResultStore:
    def test_memory_put_get(self):
        store = ResultStore(None)
        assert store.get("fp") is None
        store.put("fp", {"x": 1})
        assert store.get("fp") == {"x": 1}
        assert "fp" in store and len(store) == 1
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert store.stats.hit_rate == 0.5

    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        store.put("fp", {"units": ["a"]})
        store.corpus_put("ck", {"some": "corpus"})
        store.close()
        reopened = ResultStore(path)
        assert reopened.get("fp") == {"units": ["a"]}
        assert reopened.corpus_get("ck") == {"some": "corpus"}
        reopened.close()

    def test_corrupt_corpus_blob_returns_none(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        store._db.execute(
            "INSERT INTO corpora (key, blob, created_at) VALUES (?, ?, 0)",
            ("bad", b"not a pickle"),
        )
        store._db.commit()
        assert store.corpus_get("bad") is None
        store.close()

    def test_to_dict_reports_rates(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        store.get("missing")
        info = store.to_dict()
        assert info["misses"] == 1 and info["entries"] == 0
        assert info["path"].endswith("s.sqlite")
        store.close()


# -- worker-side runner --------------------------------------------------------


class TestRunJob:
    def test_compile_payload_shape(self):
        payload = run_job(compile_spec().to_dict())
        assert payload["ok"] is True
        unit = payload["units"][0]
        assert "s4addq" in unit["assembly"]
        assert unit["verified"] is True and unit["cycles"] == 1
        assert payload["stats"]["sessions"] == 1
        assert "saturation" in payload["stats"]["timings"]

    def test_parse_error_raises(self):
        with pytest.raises(Exception):
            run_job(compile_spec(source="(\\procdecl broken").to_dict())

    def test_unknown_kind_raises(self):
        with pytest.raises(JobError):
            run_job(JobSpec(kind="bogus").to_dict())


# -- the engine ----------------------------------------------------------------


class TestEngine:
    def test_compile_submit_and_result(self, engine):
        job_id = engine.submit(compile_spec())
        payload = engine.result(job_id, timeout=60)
        assert payload["ok"] is True
        assert engine.status(job_id)["state"] == JobState.DONE

    def test_inflight_coalescing(self, engine):
        spec = JobSpec(kind="sleep", seconds=0.4)
        first = engine.submit(spec)
        second = engine.submit(spec)
        assert first == second
        assert engine.status(first)["coalesced"] == 1
        engine.result(first, timeout=10)

    def test_done_compile_served_from_store(self, engine):
        spec = compile_spec()
        first = engine.submit(spec)
        cold = engine.result(first, timeout=60)
        second = engine.submit(spec)
        status = engine.status(second)
        assert second != first
        assert status["state"] == JobState.DONE
        assert status["from_store"] is True
        assert engine.result(second, wait=False) == cold

    def test_crash_retried_then_failed(self, engine):
        job_id = engine.submit(JobSpec(kind="crash"))
        engine.result(job_id, timeout=30)
        status = engine.status(job_id)
        assert status["state"] == JobState.FAILED
        assert status["attempts"] == 2  # initial + one retry
        assert "crashed" in status["error"]
        # The pool replaced the dead worker: new jobs still run.
        ok = engine.submit(JobSpec(kind="sleep", seconds=0.01))
        assert engine.result(ok, timeout=30)["ok"] is True

    def test_timeout_kills_and_fails(self, engine):
        job_id = engine.submit(
            JobSpec(kind="sleep", seconds=30.0, timeout_seconds=0.2)
        )
        engine.result(job_id, timeout=30)
        status = engine.status(job_id)
        assert status["state"] == JobState.FAILED
        assert "timeout" in status["error"]

    def test_in_job_error_not_retried(self, engine):
        job_id = engine.submit(compile_spec(source="(\\procdecl broken"))
        engine.result(job_id, timeout=30)
        status = engine.status(job_id)
        assert status["state"] == JobState.FAILED
        assert status["attempts"] == 1

    def test_cancel_pending_job(self, engine):
        blocker = engine.submit(JobSpec(kind="sleep", seconds=0.6))
        victim = engine.submit(JobSpec(kind="sleep", seconds=0.01))
        assert engine.cancel(victim) is True
        assert engine.status(victim)["state"] == JobState.CANCELLED
        engine.result(blocker, timeout=10)

    def test_metrics_shape(self, engine):
        engine.result(engine.submit(compile_spec()), timeout=60)
        metrics = engine.metrics()
        assert metrics["jobs"]["by_state"][JobState.DONE] == 1
        assert metrics["throughput"]["jobs_per_second"] > 0
        assert metrics["latency_seconds"]["p95"] >= metrics["latency_seconds"]["p50"]
        worker = metrics["workers"][0]
        assert worker["jobs_done"] == 1
        assert "saturation" in worker["stages"]
        assert 0.0 <= metrics["store"]["hit_rate"] <= 1.0
        sat = metrics["saturation"]
        assert sat["sessions"] >= 1
        assert sat["incremental_sessions"] >= 1
        assert sat["matches_attempted"] > 0
        assert isinstance(sat["budget_hits"], dict)

    def test_naive_matching_spec_changes_fingerprint_and_runs(self, engine):
        naive = compile_spec(incremental_match=False)
        assert job_fingerprint(naive) != job_fingerprint(compile_spec())
        payload = engine.result(engine.submit(naive), timeout=60)
        assert payload["ok"]
        assert payload["stats"]["saturation"]["incremental_sessions"] == 0

    def test_warm_corpus_round_trip(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        first = CompilationEngine(workers=1, store=ResultStore(path))
        try:
            assert first.corpus_warmed is False  # cold store: compiled fresh
        finally:
            first.shutdown(drain=False)
        second = CompilationEngine(workers=1, store=ResultStore(path))
        try:
            assert second.corpus_warmed is True  # preloaded from the store
        finally:
            second.shutdown(drain=False)


# -- HTTP front end ------------------------------------------------------------


@pytest.fixture
def service():
    engine = CompilationEngine(workers=1, max_retries=0)
    server = ServiceServer(engine, port=0)
    server.start()
    client = ServiceClient(server.url, timeout=10.0)
    yield client
    server.stop(drain=False)


class TestHttpService:
    def test_health_and_metrics(self, service):
        assert service.health() is True
        metrics = service.metrics()
        assert "jobs" in metrics and "store" in metrics

    def test_submit_result_round_trip(self, service):
        ids = service.submit([compile_spec()])
        wrapper = service.result(ids[0], timeout=60)
        assert wrapper["state"] == "done"
        assert "s4addq" in wrapper["result"]["units"][0]["assembly"]

    def test_result_not_ready_is_202(self, service):
        ids = service.submit([JobSpec(kind="sleep", seconds=0.5)])
        payload = service.result(ids[0], wait=False)
        assert payload["_http_status"] == 202
        service.result(ids[0], timeout=10)

    def test_status_unknown_job_404(self, service):
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            service.status("job-9999")

    def test_malformed_submit_400(self, service):
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            service._request("/v1/submit", {"jobs": "nope"})

    def test_failed_job_result_is_error(self, service):
        from repro.service import ServiceError

        ids = service.submit([JobSpec(kind="crash")])
        with pytest.raises(ServiceError):
            service.result(ids[0], timeout=30)


# -- acceptance (slow tier) ----------------------------------------------------


def _workload_specs():
    specs = []
    for name in ("fig2.dn", "byteswap4.dn", "checksum.dn"):
        with open(os.path.join(WORKLOAD_DIR, name)) as handle:
            specs.append(compile_spec(source=handle.read(), name=name,
                                      timeout_seconds=120.0))
    return specs


def _unique_assemblies(engine, ids):
    out = {}
    for job_id in ids:
        payload = engine.result(job_id, wait=False)
        assert payload and payload["ok"], payload
        for unit in payload["units"]:
            out[unit["label"]] = unit["assembly"]
    return out


@pytest.mark.slow
class TestAcceptance:
    def test_batch_beats_sequential_cli_2x(self, tmp_path):
        """4-worker batch >= 2x the one-shot CLI's requests/second."""
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        flags = ["--strategy", "linear", "--min-cycles", "1",
                 "--max-cycles", "10", "--max-rounds", "8",
                 "--max-enodes", "2500", "--quiet"]
        start = time.perf_counter()
        for name in ("fig2.dn", "byteswap4.dn", "checksum.dn"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro",
                 os.path.join(WORKLOAD_DIR, name)] + flags,
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            assert proc.returncode == 0, proc.stderr.decode()
        sequential_rate = 3 / (time.perf_counter() - start)

        specs = _workload_specs() * 3
        engine = CompilationEngine(
            workers=4, store=ResultStore(str(tmp_path / "store.sqlite"))
        )
        try:
            start = time.perf_counter()
            engine.submit_batch(specs)
            assert engine.drain(timeout=600)
            batch_rate = len(specs) / (time.perf_counter() - start)
        finally:
            engine.shutdown(drain=False)
        assert batch_rate >= 2.0 * sequential_rate, (
            "batch %.2f req/s vs sequential %.2f req/s"
            % (batch_rate, sequential_rate)
        )

    def test_warm_store_hit_rate_and_identical_assembly(self, tmp_path):
        """A restarted engine answers >= 90% from the store, byte-identical."""
        path = str(tmp_path / "store.sqlite")
        specs = _workload_specs()

        cold = CompilationEngine(workers=2, store=ResultStore(path))
        try:
            ids = cold.submit_batch(specs)
            assert cold.drain(timeout=600)
            cold_assemblies = _unique_assemblies(cold, ids)
        finally:
            cold.shutdown(drain=False)

        warm = CompilationEngine(workers=2, store=ResultStore(path))
        try:
            ids = warm.submit_batch(specs)
            assert warm.drain(timeout=60)
            warm_assemblies = _unique_assemblies(warm, ids)
            store_stats = warm.metrics()["store"]
            for job_id in ids:
                assert warm.status(job_id)["from_store"] is True
        finally:
            warm.shutdown(drain=False)

        assert store_stats["hit_rate"] >= 0.9
        assert warm_assemblies == cold_assemblies
