"""Tests for the architecture descriptions."""

import pytest

from repro.isa import ArchSpec, InstructionInfo, RegisterFile, ev6, simple_risc
from repro.isa.alpha import toy_tuple_machine
from repro.isa.registers import ARG_REGISTERS, ZERO_REGISTER


class TestEv6:
    def test_quad_issue(self):
        assert ev6().issue_width == 4

    def test_two_clusters(self):
        spec = ev6()
        assert spec.cluster_ids() == (0, 1)
        assert spec.clusters["U0"] == spec.clusters["L0"]
        assert spec.clusters["U1"] == spec.clusters["L1"]
        assert spec.clusters["U0"] != spec.clusters["U1"]

    def test_cross_cluster_delay(self):
        spec = ev6()
        assert spec.result_delay("U0", spec.clusters["U0"]) == 0
        assert spec.result_delay("U0", spec.clusters["U1"]) == 1

    def test_shifter_only_on_upper_units(self):
        spec = ev6()
        for op in ("sll", "srl", "sra", "extbl", "insbl", "mskbl", "zapnot"):
            assert set(spec.info(op).units) == {"U0", "U1"}, op

    def test_multiplier_only_on_u1(self):
        spec = ev6()
        assert spec.info("mul64").units == ("U1",)
        assert spec.info("mul64").latency == 7

    def test_loads_on_lower_units(self):
        spec = ev6()
        assert set(spec.info("select").units) == {"L0", "L1"}
        assert spec.info("select").latency == 3
        assert spec.info("select").kind == "load"

    def test_plain_alu_everywhere(self):
        spec = ev6()
        for op in ("add64", "bis", "cmpult"):
            assert set(spec.info(op).units) == {"U0", "U1", "L0", "L1"}, op
            assert spec.latency(op) == 1

    def test_load_latency_override(self):
        spec = ev6(load_latency=12)
        assert spec.latency("select") == 12
        assert spec.latency("add64") == 1  # others untouched

    def test_immediate_range(self):
        spec = ev6()
        assert spec.fits_immediate(0)
        assert spec.fits_immediate(255)
        assert not spec.fits_immediate(256)
        assert not spec.fits_immediate(-1)

    def test_non_machine_ops_absent(self):
        spec = ev6()
        for op in ("pow", "selectb", "storeb", "selectw"):
            assert not spec.is_machine_op(op), op

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            ev6().info("pow")

    def test_units_in_cluster(self):
        spec = ev6()
        assert set(spec.units_in_cluster(0)) == {"U0", "L0"}


class TestSimpleRisc:
    def test_single_issue(self):
        spec = simple_risc()
        assert spec.issue_width == 1
        assert spec.units == ("P0",)

    def test_single_cluster_no_delay(self):
        spec = simple_risc()
        assert spec.cross_cluster_delay == 0
        assert spec.cluster_ids() == (0,)

    def test_same_op_vocabulary_as_ev6(self):
        assert set(simple_risc().machine_ops()) == set(ev6().machine_ops())


class TestToyTupleMachine:
    def test_tuple_op_is_machine(self):
        spec = toy_tuple_machine()
        assert spec.is_machine_op("tuple2")
        assert spec.is_machine_op("proj0")
        assert spec.is_machine_op("proj1")


class TestSpecValidation:
    def test_unit_without_cluster_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec(
                name="bad",
                units=("A",),
                clusters={},
                cross_cluster_delay=0,
                issue_width=1,
                instructions={},
            )

    def test_instruction_on_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec(
                name="bad",
                units=("A",),
                clusters={"A": 0},
                cross_cluster_delay=0,
                issue_width=1,
                instructions={
                    "add64": InstructionInfo("add64", "addq", 1, ("B",))
                },
            )

    def test_zero_issue_width_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec(
                name="bad",
                units=("A",),
                clusters={"A": 0},
                cross_cluster_delay=0,
                issue_width=0,
                instructions={},
            )


class TestRegisterFile:
    def test_inputs_get_argument_registers(self):
        regs = RegisterFile()
        assert regs.bind_input("a") == ARG_REGISTERS[0]
        assert regs.bind_input("b") == ARG_REGISTERS[1]

    def test_rebinding_is_stable(self):
        regs = RegisterFile()
        first = regs.bind_input("a")
        assert regs.bind_input("a") == first

    def test_explicit_binding(self):
        regs = RegisterFile()
        assert regs.bind_input("x", "$9") == "$9"

    def test_fresh_temps_distinct(self):
        regs = RegisterFile()
        temps = [regs.fresh_temp() for _ in range(5)]
        assert len(set(temps)) == 5

    def test_register_map_includes_zero(self):
        regs = RegisterFile()
        regs.bind_input("a")
        assert regs.register_map()["0"] == ZERO_REGISTER

    def test_unbound_input_read_raises(self):
        with pytest.raises(KeyError):
            RegisterFile().input_register("nope")

    def test_temp_exhaustion_raises(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            for _ in range(100):
                regs.fresh_temp()
