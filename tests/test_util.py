"""Tests for shared utilities (table formatting, s-expr rendering)."""

import pytest

from repro.axioms.sexpr import render_sexpr
from repro.util import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [["xxxx", "y"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert lines[1].startswith("-")
        # Columns align: the second column starts at the same offset.
        assert lines[0].index("bbbb") == lines[2].index("y")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_non_string_cells(self):
        out = format_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"

    def test_no_trailing_whitespace(self):
        out = format_table(["col", "x"], [["a", "b"], ["longer", "c"]])
        for line in out.splitlines():
            assert line == line.rstrip()


class TestRenderSexpr:
    def test_atom(self):
        assert render_sexpr("foo") == "foo"

    def test_int(self):
        assert render_sexpr(42) == "42"

    def test_nested(self):
        assert render_sexpr(["a", ["b", 1], "c"]) == "(a (b 1) c)"

    def test_empty_list(self):
        assert render_sexpr([]) == "()"
