"""Tests for the Itanium-like retarget (paper section 1.1's porting claim).

"It appears that this shift will not require any radical changes (and the
changes will mostly be to the axioms)."  The same goal terms and the same
axiom files compile for the new target; only the architectural tables
changed.
"""


from repro import (
    Denali,
    DenaliConfig,
    GMA,
    SearchStrategy,
    Sort,
    const,
    ev6,
    inp,
    itanium_like,
    mk,
)
from repro.matching import SaturationConfig
from repro.sim import simulate_timing


def _config(max_cycles=9, **kwargs):
    defaults = dict(
        min_cycles=1,
        max_cycles=max_cycles,
        strategy=SearchStrategy.LINEAR,
        saturation=SaturationConfig(max_rounds=14, max_enodes=4000),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


def byteswap_goal(n):
    a = inp("a")
    r = const(0)
    for i in range(n):
        r = mk("storeb", r, const(i), mk("selectb", a, const(n - 1 - i)))
    return r


class TestSpec:
    def test_no_byte_manipulation_instructions(self):
        spec = itanium_like()
        for op in ("extbl", "insbl", "mskbl", "zapnot", "zap"):
            assert not spec.is_machine_op(op), op

    def test_scaled_adds_exist(self):
        spec = itanium_like()
        assert spec.info("s4addq").mnemonic == "shladd4"

    def test_flat_cluster(self):
        spec = itanium_like()
        assert spec.cross_cluster_delay == 0
        assert spec.cluster_ids() == (0,)

    def test_loads_on_memory_units(self):
        spec = itanium_like()
        assert set(spec.info("select").units) == {"M0", "M1"}
        assert spec.latency("select") == 2


class TestRetargetedCompilation:
    def test_fig2_uses_shladd(self):
        goal = mk("add64", mk("mul64", inp("x"), const(4)), const(1))
        result = Denali(itanium_like(), config=_config()).compile_term(goal)
        assert result.cycles == 1
        assert result.schedule.instructions[0].mnemonic == "shladd4"
        assert result.verified

    def test_byteswap2_compiles_to_shift_and_mask(self):
        result = Denali(itanium_like(), config=_config(min_cycles=2)).compile_term(
            byteswap_goal(2)
        )
        assert result.verified
        assert result.optimal
        mnemonics = {i.mnemonic for i in result.schedule.instructions}
        # No byte-manipulation hardware: only shifts/ands/ors appear.
        assert mnemonics <= {"shl", "shr.u", "and", "or", "movl"}

    def test_byteswap2_costs_more_than_on_ev6(self):
        """Without extbl/insbl, the same goal needs more cycles than the
        EV6's 3 — no: the EV6 also needs 3; what differs is the mix.  The
        honest cross-target claim: both compile, both verify, the
        schedules are within a cycle of each other."""
        it = Denali(itanium_like(), config=_config(min_cycles=2)).compile_term(
            byteswap_goal(2)
        )
        alpha = Denali(ev6(), config=_config(min_cycles=2)).compile_term(
            byteswap_goal(2)
        )
        assert it.verified and alpha.verified
        assert abs(it.cycles - alpha.cycles) <= 1

    def test_timing_model_validates(self):
        spec = itanium_like()
        result = Denali(spec, config=_config(min_cycles=2)).compile_term(
            byteswap_goal(2)
        )
        assert simulate_timing(result.schedule, spec).ok

    def test_memory_round_trip(self):
        spec = itanium_like()
        m = inp("M", Sort.MEM)
        gma = GMA(
            ("M",),
            (mk("store", m, inp("p"), mk("select", m, inp("q"))),),
        )
        result = Denali(spec, config=_config(max_cycles=8)).compile_gma(gma)
        assert result.verified
        assert result.cycles == 3  # ld8 (2) + st8 (1): faster than EV6's 4

    def test_multiply_is_expensive(self):
        goal = mk("mul64", inp("a"), inp("b"))
        result = Denali(itanium_like(), config=_config(max_cycles=16)).compile_term(
            goal
        )
        assert result.cycles == 15

    def test_same_axioms_same_graph_different_winners(self):
        """One saturated E-graph serves both targets; the encoder picks
        different members per ISA."""
        goal = mk("mul64", inp("a"), const(16))
        alpha = Denali(ev6(), config=_config()).compile_term(goal)
        it = Denali(itanium_like(), config=_config()).compile_term(goal)
        assert alpha.schedule.instructions[0].mnemonic == "sll"
        assert it.schedule.instructions[0].mnemonic == "shl"
        assert alpha.cycles == it.cycles == 1
