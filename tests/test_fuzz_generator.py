"""Tests for the random program generator."""

from repro.axioms.sexpr import parse_sexprs, render_sexpr
from repro.fuzz import GeneratorConfig, generate_case, render_lines
from repro.lang import parse_program, translate_procedure


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in range(50):
            assert generate_case(seed).source == generate_case(seed).source

    def test_different_seeds_differ(self):
        sources = {generate_case(seed).source for seed in range(50)}
        # Not every pair differs (tiny programs can collide), but the
        # stream must not be degenerate.
        assert len(sources) > 40

    def test_config_is_respected(self):
        cfg = GeneratorConfig(loop_probability=0.0, store_probability=0.0)
        for seed in range(40):
            source = generate_case(seed, cfg).source
            assert "\\do" not in source


class TestValidity:
    def test_every_case_parses_and_translates(self):
        """The generator's well-typedness-by-construction claim, enforced.

        Every seed must survive the real front end: parse, then translate
        to GMAs.  This is the cheap half of the differential harness and
        covers the loop-degeneration fix (a loop whose every assignment
        aliases its target used to be rejected by the translator).
        """
        for seed in range(400):
            case = generate_case(seed)
            program = parse_program(case.source)
            gmas = []
            for proc in program.procedures:
                gmas.extend(translate_procedure(proc, program.registry))
            assert gmas, case.source

    def test_loops_translate_to_guarded_gmas(self):
        seen_loop = False
        for seed in range(80):
            case = generate_case(seed)
            if "\\do" not in case.source:
                continue
            seen_loop = True
            program = parse_program(case.source)
            (proc,) = program.procedures
            labels = [l for l, _ in translate_procedure(proc, program.registry)]
            assert any(".loop" in l for l in labels)
        assert seen_loop


class TestRendering:
    def test_render_lines_roundtrips(self):
        """The line-oriented rendering parses back to the same form."""
        for seed in range(60):
            case = generate_case(seed)
            text = "\n".join(render_lines(case.form))
            (reparsed,) = parse_sexprs(text)
            assert render_sexpr(reparsed) == case.source

    def test_render_lines_shape(self):
        case = generate_case(11)
        lines = case.source_lines()
        assert lines[0].startswith("(\\procdecl ")
        assert lines[-1] == ")"
        assert len(lines) >= 3
