"""The stochastic (MCMC) backend: mutations, cost model, search, races.

Three layers are covered: the proposal kernel's structural invariants,
the cost model's distance/CEGIS behaviour, and the end-to-end backends
(``stochastic`` alone, and ``race`` against the SAT ladder) including
the loser-cancellation latency of :class:`BackendRace`.
"""

import random
import threading
import time

import pytest

from repro import Denali, DenaliConfig, const, ev6, inp, mk
from repro.core.probes import BackendRace, CancelToken, RaceEntry
from repro.lang import parse_program, translate_procedure
from repro.matching import SaturationConfig
from repro.stochastic.backend import StochasticProbe, supports_gma
from repro.stochastic.cost import CostModel
from repro.stochastic.mutations import Candidate, MutationSpace, gma_literals
from repro.stochastic.search import (
    StochasticConfig,
    chain_seed,
    stochastic_search,
)
from repro.verify.checker import check_schedule

FIG2 = "(\\procdecl fig2 ((reg6 long)) long (:= (res (+ (* reg6 4) 1))))"
# A dependent multiply chain: three serial 7-cycle multiplies put the
# best schedule far beyond any small SAT cycle ceiling.
MULCHAIN = (
    "(\\procdecl mulchain ((a long) (b long) (c long)) long"
    "  (:= (res (* (* a b) c))))"
)


def _gma(source):
    program = parse_program(source)
    label, gma = translate_procedure(
        program.procedures[0], program.registry
    )[0]
    return gma, program.registry


def _denali(**config_kwargs):
    defaults = dict(
        min_cycles=1,
        max_cycles=8,
        saturation=SaturationConfig(max_rounds=10, max_enodes=2000),
    )
    defaults.update(config_kwargs)
    return Denali(ev6(), config=DenaliConfig(**defaults))


def _seeded_space_and_model(source, vectors=8):
    from repro.baselines.compiler import lower_goals

    gma, registry = _gma(source)
    den = _denali()
    definitions = den.axioms.definitions()
    instrs, goals = lower_goals(gma, ev6(), registry, definitions)
    seed_cand = Candidate(list(instrs), list(goals))
    from repro.verify.checker import collect_inputs
    from repro.isa.registers import INPUT_REGISTERS

    names = sorted(collect_inputs(gma))
    regs = {n: r for n, r in zip(names, INPUT_REGISTERS)}
    model = CostModel(
        gma, ev6(), registry, definitions, regs, vectors=vectors, seed=7
    )
    pool, hot = gma_literals(gma, ev6())
    space = MutationSpace(ev6(), registry, names, pool, hot_literals=hot)
    return seed_cand, space, model


class TestMutations:
    def test_random_walk_stays_well_formed(self):
        seed_cand, space, _ = _seeded_space_and_model(FIG2)
        assert seed_cand.well_formed()
        rng = random.Random(11)
        cur = seed_cand
        proposed = 0
        for _ in range(600):
            out = space.propose(cur, rng)
            if out is None:
                continue
            cand, move = out
            assert cand.well_formed(), "move %r broke SSA form" % move
            proposed += 1
            cur = cand
        assert proposed > 300  # the kernel mostly produces usable moves

    def test_proposals_do_not_mutate_the_input(self):
        seed_cand, space, _ = _seeded_space_and_model(FIG2)
        fingerprint = seed_cand.key()
        rng = random.Random(3)
        for _ in range(200):
            space.propose(seed_cand, rng)
        assert seed_cand.key() == fingerprint

    def test_literal_pools_are_sorted_and_nested(self):
        gma, _ = _gma(FIG2)
        pool, hot = gma_literals(gma, ev6())
        assert pool == sorted(pool)
        assert hot == sorted(hot)
        assert set(hot) <= set(pool)
        assert 4 in hot  # fig2's own constant
        assert 1 in hot


class TestCostModel:
    def test_seed_program_has_zero_distance(self):
        seed_cand, _, model = _seeded_space_and_model(FIG2)
        assert model.distance(seed_cand) == 0
        assert model.cost(seed_cand) > 0  # cycles + length never vanish

    def test_wrong_program_has_positive_distance(self):
        seed_cand, _, model = _seeded_space_and_model(FIG2)
        wrong = seed_cand.copy()
        from repro.baselines.compiler import Ref, VInstr

        # Retarget the goal to the raw input: drops the *4+1 computation.
        wrong.goals = [Ref("input", name="reg6")]
        assert model.distance(wrong) > 0

    def test_counterexample_feedback_grows_the_vectors(self):
        seed_cand, _, model = _seeded_space_and_model(FIG2, vectors=4)
        before = len(model.vectors)
        model.add_vector({"reg6": 12345})
        assert len(model.vectors) == before + 1
        # The new vector's expected outputs come from the GMA itself.
        env, expected = model.vectors[-1]
        assert env == {"reg6": 12345}
        assert expected == (12345 * 4 + 1,)

    def test_fork_isolates_learned_vectors(self):
        _, _, model = _seeded_space_and_model(FIG2, vectors=4)
        clone = model.fork()
        clone.add_vector({"reg6": 99})
        assert len(clone.vectors) == len(model.vectors) + 1


class TestSupportsGma:
    def test_register_only_gma_is_in_scope(self):
        gma, _ = _gma(FIG2)
        assert supports_gma(gma) is None

    def test_guarded_gma_is_sat_only(self):
        src = (
            "(\\procdecl g ((a long)) long"
            "  (\\unroll 1 (\\do (-> (< a 4) (:= (a (+ a 1)))))))"
        )
        gma, _ = _gma(src)
        assert "guard" in supports_gma(gma)

    def test_memory_gma_is_sat_only(self):
        src = "(\\procdecl m ((p (\\ref long))) long (:= (res (\\deref p))))"
        gma, _ = _gma(src)
        assert supports_gma(gma) is not None


class TestDeterminism:
    def _campaign(self):
        gma, registry = _gma(FIG2)
        den = _denali()
        return stochastic_search(
            gma,
            ev6(),
            registry,
            den.axioms.definitions(),
            config=StochasticConfig(chains=2, moves=800),
            session_seed=20020617,
        )

    @staticmethod
    def _strip_times(obj):
        if isinstance(obj, dict):
            return {
                k: TestDeterminism._strip_times(v)
                for k, v in obj.items()
                if k != "time_seconds"
            }
        if isinstance(obj, list):
            return [TestDeterminism._strip_times(v) for v in obj]
        return obj

    def test_fixed_seed_is_byte_reproducible(self):
        a, b = self._campaign(), self._campaign()
        assert (a.schedule is None) == (b.schedule is None)
        if a.schedule is not None:
            assert a.schedule.render() == b.schedule.render()
        assert a.cycles == b.cycles
        assert self._strip_times(a.stats_dict()) == self._strip_times(
            b.stats_dict()
        )

    def test_chain_seeds_are_distinct_and_stable(self):
        seeds = {chain_seed(42, 0, c) for c in range(16)}
        assert len(seeds) == 16
        assert chain_seed(42, 0, 3) == chain_seed(42, 0, 3)
        assert chain_seed(42, 0, 3) != chain_seed(43, 0, 3)

    def test_verified_winner_passes_an_independent_check(self):
        gma, registry = _gma(FIG2)
        den = _denali()
        out = self._campaign()
        assert out.schedule is not None and out.verified
        report = check_schedule(
            gma,
            out.schedule,
            registry,
            trials=64,
            seed=0xC0FFEE,
            definitions=den.axioms.definitions(),
        )
        assert report.passed


class TestPipelineBackends:
    def test_stochastic_backend_compiles_fig2(self):
        den = _denali(
            backend="stochastic",
            stochastic=StochasticConfig(chains=2, moves=1200),
        )
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        assert res.backend == "stochastic"
        assert res.schedule is not None
        assert res.verified
        assert not res.optimal  # sampling proves nothing about the floor
        assert res.stats.stochastic is not None
        assert res.stats.stochastic["totals"]["proposals"] > 0

    def test_race_backend_returns_a_verified_winner(self):
        den = _denali(
            backend="race",
            stochastic=StochasticConfig(chains=1, moves=400),
        )
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        assert res.backend == "race"
        assert res.schedule is not None
        assert res.verified
        assert res.winner in ("sat", "stochastic")
        assert res.stats.stochastic is not None

    def test_race_solves_beyond_the_sat_ceiling(self):
        # Three chained multiplies need ~15+ cycles; with max_cycles=2
        # the ladder is all-UNSAT, but the race still returns the
        # stochastic contestant's verified schedule.
        gma, registry = _gma(MULCHAIN)
        den = Denali(
            ev6(),
            registry=registry,
            config=DenaliConfig(
                min_cycles=1,
                max_cycles=2,
                backend="race",
                stochastic=StochasticConfig(chains=1, moves=200),
                saturation=SaturationConfig(max_rounds=6, max_enodes=1500),
            ),
        )
        res = den.compile_gma(gma)
        assert res.schedule is not None
        assert res.winner == "stochastic"
        assert res.verified
        assert res.cycles > 2

    def test_unknown_backend_is_rejected(self):
        den = _denali(backend="annealing")
        with pytest.raises(ValueError):
            den.compile_term(inp("a"))

    def test_race_falls_back_to_sat_on_unsupported_gma(self):
        src = "(\\procdecl m ((p (\\ref long))) long (:= (res (\\deref p))))"
        gma, registry = _gma(src)
        den = Denali(
            ev6(),
            registry=registry,
            config=DenaliConfig(
                min_cycles=1,
                max_cycles=6,
                backend="race",
                saturation=SaturationConfig(max_rounds=8, max_enodes=2000),
            ),
        )
        res = den.compile_gma(gma)
        assert res.schedule is not None
        assert res.winner == "sat"
        assert res.stats.stochastic.get("unsupported")


class TestBackendRace:
    def test_slow_third_contestant_is_cancelled_promptly(self):
        """Loser-cancellation latency: a verified winner must not wait
        for a deliberately slow third contestant's full runtime."""

        def fast(token):
            time.sleep(0.02)
            return RaceEntry("fast", verified=True, cycles=3, payload="F")

        def medium(token):
            for _ in range(200):
                if token.is_set():
                    return RaceEntry(
                        "medium", verified=False, cycles=None, cancelled=True
                    )
                time.sleep(0.005)
            return RaceEntry("medium", verified=True, cycles=5, payload="M")

        slow_full_seconds = 10.0

        def slow(token):
            deadline = time.time() + slow_full_seconds
            while time.time() < deadline:
                if token.is_set():
                    return RaceEntry(
                        "slow", verified=False, cycles=None, cancelled=True
                    )
                time.sleep(0.005)
            return RaceEntry(  # pragma: no cover - cancellation failed
                "slow", verified=True, cycles=9, payload="S"
            )

        start = time.perf_counter()
        winner, entries = BackendRace().run(
            [("fast", fast), ("medium", medium), ("slow", slow)]
        )
        elapsed = time.perf_counter() - start
        assert winner == "fast"
        assert entries["fast"].verified
        assert entries["slow"].cancelled
        assert entries["medium"].cancelled
        # Cancellation latency, not the slow contestant's runtime.
        assert elapsed < slow_full_seconds / 4

    def test_unverified_finishers_cancel_nobody(self):
        def loser(token):
            return RaceEntry("loser", verified=False, cycles=None)

        def worker(token):
            time.sleep(0.05)
            assert not token.is_set()
            return RaceEntry("worker", verified=True, cycles=2)

        winner, entries = BackendRace().run(
            [("loser", loser), ("worker", worker)]
        )
        assert winner == "worker"
        assert not entries["loser"].cancelled

    def test_empty_race_returns_nothing(self):
        winner, entries = BackendRace().run([])
        assert winner is None and entries == {}

    def test_stochastic_probe_is_cancellable(self):
        gma, registry = _gma(FIG2)
        den = _denali()
        probe = StochasticProbe(
            gma,
            ev6(),
            registry,
            den.axioms.definitions(),
            config=StochasticConfig(chains=4, moves=200000),
            session_seed=1,
        )
        token = CancelToken()
        box = {}

        def run():
            box["out"] = probe(token)

        thread = threading.Thread(target=run)
        start = time.perf_counter()
        thread.start()
        time.sleep(0.1)
        token.cancel()
        thread.join(timeout=30)
        elapsed = time.perf_counter() - start
        assert not thread.is_alive()
        assert elapsed < 15  # far below 4 x 200k moves of honest work
        out = box["out"]
        assert any(c.cancelled for c in out.chains) or len(out.chains) < 4


class TestCheckerCounterexamples:
    def _fig2_schedule(self):
        den = _denali()
        res = den.compile_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        assert res.schedule is not None
        return res, den

    def test_wrong_schedule_yields_concrete_counterexample(self):
        res, den = self._fig2_schedule()
        sabotaged = res.schedule
        instr = sabotaged.instructions[0]
        # Break a literal operand so the schedule computes the wrong value.
        from repro.core.emit import Operand

        for i, op in enumerate(instr.operands):
            if op.literal is not None:
                instr.operands[i] = Operand(op.class_id, literal=op.literal + 1)
                break
        report = check_schedule(
            res.gma, sabotaged, definitions=den.axioms.definitions()
        )
        assert not report.passed
        assert report.counterexamples
        cx = report.counterexamples[0]
        assert "reg6" in cx.env
        assert cx.got != cx.want
        assert "trial" in cx.describe()

    def test_counterexample_env_feeds_the_cost_model(self):
        """The CEGIS loop: a checker counterexample becomes a vector the
        cost model scores against, with GMA-derived expected outputs."""
        _, _, model = _seeded_space_and_model(FIG2, vectors=4)
        res, den = self._fig2_schedule()
        report = check_schedule(
            res.gma, res.schedule, definitions=den.axioms.definitions()
        )
        assert report.passed and not report.counterexamples
        model.add_vector({"reg6": 7})
        env, expected = model.vectors[-1]
        assert expected == (7 * 4 + 1,)
