"""Differential property test: both code generators compute the same function.

The superoptimizer and the conventional baseline share nothing but the
operator semantics, the ArchSpec tables and the simulators; if their
outputs ever disagree on a value, one of them miscompiled.  Random
expressions over the mixed ALU/byte vocabulary are compiled by both and
executed on shared inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Denali, DenaliConfig, GMA, ev6, const, inp, mk
from repro.baselines import compile_conventional

pytestmark = pytest.mark.slow
from repro.baselines.compiler import CompileError
from repro.matching import SaturationConfig
from repro.sim import execute_schedule

_INPUTS = ["a", "b"]
_BINOPS = ["add64", "sub64", "and64", "bis", "xor64", "s4addq", "cmpult"]
_BYTEOPS = ["extbl", "insbl", "mskbl"]


def _terms(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(_INPUTS).map(inp),
            st.integers(0, 255).map(const),
        )
    sub = _terms(depth - 1)
    return st.one_of(
        st.sampled_from(_INPUTS).map(inp),
        st.integers(0, 255).map(const),
        st.tuples(st.sampled_from(_BINOPS), sub, sub).map(
            lambda t: mk(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_BYTEOPS), sub, st.integers(0, 7)).map(
            lambda t: mk(t[0], t[1], const(t[2]))
        ),
    )


_VALUES = [
    (0, 0),
    (1, 2),
    (0xFF, 0x100),
    (0x0102030405060708, 0xF0E0D0C0B0A09080),
    ((1 << 64) - 1, 1 << 63),
]


@settings(max_examples=40, deadline=None)
@given(_terms(2))
def test_denali_and_conventional_agree(term):
    spec = ev6()
    gma = GMA(("\\res",), (term,))
    den = Denali(
        spec,
        config=DenaliConfig(
            max_cycles=10,
            verify=False,
            saturation=SaturationConfig(max_rounds=6, max_enodes=1200),
        ),
    )
    result = den.compile_gma(gma)
    if result.schedule is None:
        return
    try:
        conventional = compile_conventional(gma, spec)
    except CompileError:
        return

    for a, b in _VALUES:
        env = {"a": a, "b": b}

        def bound_env(schedule):
            return {
                k: v for k, v in env.items() if k in schedule.register_map
            }

        s1 = execute_schedule(result.schedule, bound_env(result.schedule))
        s2 = execute_schedule(conventional, bound_env(conventional))

        def value(schedule, state):
            op = schedule.goal_operands[0]
            if op.literal is not None:
                return op.literal
            return state.read(op.register)

        v1 = value(result.schedule, s1)
        v2 = value(conventional, s2)
        assert v1 == v2, (term.pretty(), env, hex(v1), hex(v2))
