"""Smoke tests: the fast example scripts run to completion.

(The byteswap and checksum examples take longer and are exercised by the
benchmark harness instead.)
"""

import os
import runpy
import sys

import pytest

pytestmark = pytest.mark.slow

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name):
    path = os.path.join(_EXAMPLES, name)
    argv = sys.argv
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = argv


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "fig2_walkthrough.py",
        "software_pipelining.py",
        "whole_procedure.py",
    ],
)
def test_example_runs(script, capsys):
    _run(script)
    out = capsys.readouterr().out
    assert out.strip()  # produced output and did not crash
