"""Tests for the differential checker.

The key property: the checker passes real pipeline output and *fails*
deliberately corrupted schedules — it must actually be able to catch bugs.
"""


from repro import (
    Denali,
    DenaliConfig,
    GMA,
    check_schedule,
    const,
    ev6,
    inp,
    mk,
    simple_risc,
)
from repro.core.emit import Operand
from repro.matching import SaturationConfig
from repro.terms import Sort


def _compile(term_or_gma, spec=None):
    den = Denali(
        spec or simple_risc(),
        config=DenaliConfig(
            max_cycles=8,
            verify=False,
            saturation=SaturationConfig(max_rounds=8, max_enodes=1500),
        ),
    )
    if isinstance(term_or_gma, GMA):
        return den.compile_gma(term_or_gma)
    return den.compile_term(term_or_gma)


class TestCheckerPasses:
    def test_correct_schedule_passes(self):
        res = _compile(mk("add64", mk("sll", inp("a"), const(2)), inp("b")))
        report = check_schedule(res.gma, res.schedule)
        assert report.passed
        assert report.failures == []

    def test_memory_schedule_passes(self):
        m = inp("M", Sort.MEM)
        gma = GMA(("M",), (mk("store", m, inp("p"), inp("x")),))
        res = _compile(gma, ev6())
        report = check_schedule(res.gma, res.schedule)
        assert report.passed

    def test_constant_goal_passes(self):
        res = _compile(mk("and64", inp("a"), const(0)))
        report = check_schedule(res.gma, res.schedule)
        assert report.passed


class TestCheckerCatchesBugs:
    def test_wrong_literal_caught(self):
        res = _compile(mk("add64", inp("a"), const(5)))
        sched = res.schedule
        # Corrupt: change the immediate 5 to 6.
        for instr in sched.instructions:
            for op in instr.operands:
                if op.literal == 5:
                    op.literal = 6
        report = check_schedule(res.gma, sched)
        assert not report.passed

    def test_wrong_opcode_caught(self):
        res = _compile(mk("add64", inp("a"), inp("b")))
        sched = res.schedule
        instr = sched.instructions[0]
        instr.node = instr.node._replace(op="sub64")
        report = check_schedule(res.gma, sched)
        assert not report.passed

    def test_swapped_goal_register_caught(self):
        gma = GMA(
            ("x", "y"),
            (mk("add64", inp("a"), inp("b")), mk("xor64", inp("a"), inp("b"))),
        )
        res = _compile(gma, ev6())
        sched = res.schedule
        sched.goal_operands[0], sched.goal_operands[1] = (
            sched.goal_operands[1],
            sched.goal_operands[0],
        )
        report = check_schedule(res.gma, sched)
        assert not report.passed

    def test_wrong_store_address_caught(self):
        m = inp("M", Sort.MEM)
        gma = GMA(("M",), (mk("store", m, inp("p"), const(9)),))
        res = _compile(gma, ev6())
        sched = res.schedule
        stq = next(i for i in sched.instructions if i.mnemonic == "stq")
        # Divert the store's address to a register holding something else.
        stq.operands[1] = Operand(stq.operands[1].class_id, literal=0)
        report = check_schedule(res.gma, sched)
        assert not report.passed

    def test_failures_carry_detail(self):
        res = _compile(mk("add64", inp("a"), const(5)))
        sched = res.schedule
        for instr in sched.instructions:
            for op in instr.operands:
                if op.literal == 5:
                    op.literal = 7
        report = check_schedule(res.gma, sched)
        assert report.failures
        assert "expected" in report.failures[0]


class TestAdversarialInputs:
    def test_signedness_bug_caught(self):
        """cmplt vs cmpult differ only on 'negative' inputs; the checker's
        adversarial values must include some."""
        res = _compile(mk("cmpult", inp("a"), inp("b")), ev6())
        sched = res.schedule
        instr = next(i for i in sched.instructions if i.mnemonic == "cmpult")
        instr.node = instr.node._replace(op="cmplt")
        report = check_schedule(res.gma, sched, trials=16)
        assert not report.passed

    def test_byte_boundary_bug_caught(self):
        res = _compile(mk("extbl", inp("a"), const(1)), ev6())
        sched = res.schedule
        instr = next(i for i in sched.instructions if i.mnemonic == "extbl")
        instr.node = instr.node._replace(op="extwl")
        instr.mnemonic = "extwl"
        report = check_schedule(res.gma, sched, trials=16)
        assert not report.passed
