"""Tests for hash-consed terms, the operator registry and the evaluator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.terms import (
    EvalError,
    Memory,
    Sort,
    TermError,
    const,
    default_registry,
    evaluate,
    inp,
    mk,
    subterms,
    term_depth,
    term_size,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestInterning:
    def test_const_interned(self):
        assert const(4) is const(4)

    def test_const_wraps_mod_2_64(self):
        assert const(-1) is const((1 << 64) - 1)

    def test_input_interned(self):
        assert inp("a") is inp("a")

    def test_application_interned(self):
        t1 = mk("add64", inp("a"), const(1))
        t2 = mk("add64", inp("a"), const(1))
        assert t1 is t2

    def test_different_ops_differ(self):
        assert mk("add64", inp("a"), const(1)) is not mk(
            "sub64", inp("a"), const(1)
        )

    def test_input_sorts_distinguish(self):
        assert inp("m", Sort.MEM) is not inp("m", Sort.INT)


class TestSortChecking:
    def test_wrong_arity_rejected(self):
        with pytest.raises(TermError):
            mk("add64", inp("a"))

    def test_wrong_sort_rejected(self):
        with pytest.raises(TermError):
            mk("add64", inp("m", Sort.MEM), const(1))

    def test_select_requires_memory(self):
        with pytest.raises(TermError):
            mk("select", inp("a"), const(0))

    def test_select_ok_with_memory(self):
        t = mk("select", inp("M", Sort.MEM), inp("p"))
        assert t.sort == Sort.INT

    def test_store_has_memory_sort(self):
        t = mk("store", inp("M", Sort.MEM), inp("p"), const(0))
        assert t.sort == Sort.MEM

    def test_unknown_operator_rejected(self):
        with pytest.raises(KeyError):
            mk("frobnicate", inp("a"))

    def test_const_requires_int(self):
        with pytest.raises(TermError):
            const("four")

    def test_non_term_argument_rejected(self):
        with pytest.raises(TermError):
            mk("add64", inp("a"), 1)


class TestRegistry:
    def test_declare_local_op(self):
        reg = default_registry()
        reg.declare("carry", (Sort.INT, Sort.INT), Sort.INT)
        t = mk("carry", inp("a"), inp("b"), registry=reg)
        assert t.op == "carry"

    def test_redeclare_same_signature_ok(self):
        reg = default_registry()
        reg.declare("carry", (Sort.INT, Sort.INT), Sort.INT)
        reg.declare("carry", (Sort.INT, Sort.INT), Sort.INT)

    def test_redeclare_conflicting_rejected(self):
        reg = default_registry()
        reg.declare("carry", (Sort.INT, Sort.INT), Sort.INT)
        with pytest.raises(ValueError):
            reg.declare("carry", (Sort.INT,), Sort.INT)

    def test_copy_isolates_declarations(self):
        reg = default_registry()
        reg2 = reg.copy()
        reg2.declare("local", (Sort.INT,), Sort.INT)
        assert "local" in reg2
        assert "local" not in reg

    def test_commutativity_flags(self):
        reg = default_registry()
        assert reg.get("add64").commutative
        assert not reg.get("sub64").commutative


class TestTraversal:
    def test_subterms_includes_all(self):
        t = mk("add64", mk("mul64", inp("a"), const(4)), const(1))
        names = {s.op for s in subterms(t)}
        assert names == {"add64", "mul64", "input", "const"}

    def test_term_size_shares_dag_nodes(self):
        a = inp("a")
        double = mk("add64", a, a)
        assert term_size(double) == 2

    def test_term_depth(self):
        t = mk("add64", mk("mul64", inp("a"), const(4)), const(1))
        assert term_depth(t) == 3

    def test_depth_of_leaf(self):
        assert term_depth(const(0)) == 1


class TestPretty:
    def test_pretty_sexpr(self):
        t = mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        assert t.pretty() == "(add64 (mul64 reg6 4) 1)"

    def test_pretty_const(self):
        assert const(7).pretty() == "7"


class TestEvaluator:
    def test_eval_const(self):
        assert evaluate(const(5), {}) == 5

    def test_eval_input(self):
        assert evaluate(inp("a"), {"a": 9}) == 9

    def test_eval_missing_input_raises(self):
        with pytest.raises(EvalError):
            evaluate(inp("a"), {})

    def test_eval_application(self):
        t = mk("add64", mk("mul64", inp("a"), const(4)), const(1))
        assert evaluate(t, {"a": 10}) == 41

    def test_eval_memory_roundtrip(self):
        m = inp("M", Sort.MEM)
        p = inp("p")
        t = mk("select", mk("store", m, p, const(99)), p)
        assert evaluate(t, {"M": Memory(), "p": 64}) == 99

    def test_eval_uninterpreted_raises(self):
        reg = default_registry()
        reg.declare("mystery", (Sort.INT,), Sort.INT)
        t = mk("mystery", const(1), registry=reg)
        with pytest.raises(EvalError):
            evaluate(t, {}, registry=reg)

    @given(u64, u64)
    def test_eval_matches_semantics(self, a, b):
        t = mk("add64", inp("x"), inp("y"))
        assert evaluate(t, {"x": a, "y": b}) == (a + b) % (1 << 64)

    def test_eval_shared_subterm_memoised(self):
        # A chain of doublings evaluates in linear time thanks to memoising.
        t = inp("a")
        for _ in range(200):
            t = mk("add64", t, t)
        assert evaluate(t, {"a": 1}) == pow(2, 200, 1 << 64)

    def test_eval_zero_result_cached(self):
        t = mk("sub64", inp("a"), inp("a"))
        outer = mk("add64", t, t)
        assert evaluate(outer, {"a": 3}) == 0
