"""Tests for the incremental E-matching core.

Covers the E-graph's mod-time journal (``changed_since`` / ``dirty_cone``
/ ``extend_cone``), snapshot/restore, the stamp-filtered ``ematch_since``
scan, dedupe-key recanonicalization after merges, budget-hit telemetry,
partition signatures, and the incremental-vs-naive saturation fixpoint
parity the ``matching`` fuzz oracle enforces.
"""

import random

import pytest

from repro.axioms import (
    alpha_axioms,
    constant_synthesis_axioms,
    math_axioms,
    parse_axiom_file,
)
from repro.axioms.axiom import Pattern
from repro.egraph import EGraph, EGraphSnapshot, partition_signature
from repro.matching import (
    SaturationConfig,
    SaturationEngine,
    ematch_all,
    ematch_since,
    saturate,
)
from repro.terms import const, default_registry, inp, mk

COMM = r"(\axiom (forall (x y) (pats (\add64 x y)) (eq (\add64 x y) (\add64 y x))))"
IDENT = r"(\axiom (forall (x) (pats (\mul64 x 1)) (eq (\mul64 x 1) x)))"


def _axioms(text):
    return parse_axiom_file(text)


def _full_corpus(reg):
    return (
        math_axioms(reg) + constant_synthesis_axioms(reg) + alpha_axioms(reg)
    )


class TestModTimes:
    def test_version_advances_on_structural_change(self):
        eg = EGraph()
        v0 = eg.version
        eg.add_term(mk("add64", inp("a"), inp("b")))
        assert eg.version > v0

    def test_changed_since_reports_new_roots(self):
        eg = EGraph()
        eg.add_term(inp("a"))
        stamp = eg.version
        c = eg.add_term(mk("add64", inp("a"), inp("b")))
        changed = eg.changed_since(stamp)
        assert eg.find(c) in changed
        assert eg.changed_since(eg.version) == set()

    def test_merge_touches_surviving_root(self):
        eg = EGraph()
        a = eg.add_term(inp("a"))
        b = eg.add_term(inp("b"))
        stamp = eg.version
        eg.merge(a, b)
        eg.rebuild()
        assert eg.find(a) in eg.changed_since(stamp)

    def test_dirty_cone_includes_ancestors(self):
        eg = EGraph()
        f = eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.rebuild()
        stamp = eg.version
        assert eg.dirty_cone(stamp) == set()
        # Touch a leaf: the cone must pull in the enclosing application.
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("c")))
        eg.rebuild()
        cone = eg.dirty_cone(stamp)
        assert eg.find(f) in cone


class TestExtendCone:
    @pytest.mark.parametrize("seed", range(5))
    def test_extension_matches_full_recompute(self, seed):
        """Incrementally extended cones equal a from-scratch dirty_cone.

        Random graph mutations (term additions and merges) are applied in
        chunks; after every chunk the cone is extended from the previous
        refresh point and compared against a full recompute for the same
        base stamp (dead ids left behind by merges are ignored — only
        live roots matter to the matcher).
        """
        rng = random.Random(seed)
        eg = EGraph()
        pool = [eg.add_term(inp("x%d" % i)) for i in range(4)]
        eg.rebuild()
        base = eg.version
        cone = eg.dirty_cone(base)
        last_refresh = eg.version
        for _chunk in range(6):
            for _ in range(rng.randrange(1, 4)):
                if rng.random() < 0.6 or len(pool) < 2:
                    a, b = rng.choice(pool), rng.choice(pool)
                    pool.append(
                        eg.add_enode("add64", (eg.find(a), eg.find(b)))
                    )
                else:
                    eg.merge(rng.choice(pool), rng.choice(pool))
            eg.rebuild()
            eg.extend_cone(cone, last_refresh)
            last_refresh = eg.version
            full = eg.dirty_cone(base)
            live = {c for c in cone if eg.find(c) == c}
            assert live == full


class TestSnapshot:
    def _saturated(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        saturate(eg, _axioms(COMM))
        return eg

    def test_restore_is_independent(self):
        eg = self._saturated()
        snap = eg.snapshot()
        assert isinstance(snap, EGraphSnapshot)
        first = snap.restore()
        before = first.num_enodes()
        first.add_term(mk("mul64", inp("z"), const(7)))
        second = snap.restore()
        assert second.num_enodes() == before

    def test_restore_preserves_partition(self):
        eg = self._saturated()
        snap = eg.snapshot()
        restored = snap.restore()
        assert partition_signature(restored) == partition_signature(eg)
        assert restored.num_enodes() == eg.num_enodes()

    def test_master_isolated_from_source_mutation(self):
        eg = self._saturated()
        snap = eg.snapshot()
        frozen = eg.num_enodes()
        eg.add_term(mk("mul64", inp("q"), const(3)))
        assert snap.restore().num_enodes() == frozen


class TestEnodesAtLeast:
    def test_agrees_with_exact_count_on_dirty_graph(self):
        """The fast path answers only when the stale upper bound settles it."""
        eg = EGraph()
        a = eg.add_term(mk("add64", inp("a"), inp("b")))
        b = eg.add_term(mk("add64", inp("c"), inp("b")))
        # Merging the two adds leaves duplicate hashcons entries until the
        # next closure run; the raw size over-counts the canonical graph.
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("c")))
        eg.merge(a, b)
        for bound in range(1, 12):
            fresh = eg.copy()
            assert fresh.enodes_at_least(bound) == (
                fresh.num_enodes() >= bound
            )

    def test_below_bound_answer_skips_the_rebuild(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert eg._repair
        assert not eg.enodes_at_least(1000)
        assert eg._repair  # settled from the upper bound alone
        assert eg.enodes_at_least(1)
        assert not eg._repair  # crossing the bound forced the exact count


class TestEmatchSince:
    PAT = Pattern.apply("add64", Pattern.variable("x"), Pattern.variable("y"))

    def test_stamp_zero_equals_full_scan(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.add_term(mk("add64", inp("c"), inp("d")))
        eg.rebuild()
        scan = ematch_since(eg, self.PAT, 0)
        assert scan.substs == ematch_all(eg, self.PAT)
        assert scan.pruned == 0

    def test_only_dirty_heads_scanned(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.rebuild()
        stamp = eg.version
        fresh = eg.add_term(mk("add64", inp("c"), inp("d")))
        eg.rebuild()
        scan = ematch_since(eg, self.PAT, stamp)
        assert scan.scanned == 1
        assert scan.pruned == 1
        assert scan.substs == [
            {"x": eg.find(eg.add_term(inp("c"))),
             "y": eg.find(eg.add_term(inp("d")))}
        ]
        assert eg.find(fresh) in eg.dirty_cone(stamp)

    def test_quiescent_graph_scans_nothing(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.rebuild()
        scan = ematch_since(eg, self.PAT, eg.version)
        assert scan.substs == []
        assert scan.scanned == 0
        assert scan.pruned == 1


class TestDedupeRecanonicalization:
    def test_dedupe_survives_merges(self):
        """Satellite: instance keys are re-keyed after merges.

        After ``a`` and ``c`` merge, the commuted instances of
        ``add64(a,b)`` and ``add64(c,b)`` collapse onto one key; a rerun
        must recognise every instance as already asserted instead of
        re-asserting under the stale pre-merge key.
        """
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        eg.add_term(mk("add64", inp("c"), inp("b")))
        engine = SaturationEngine(eg, _axioms(COMM))
        engine.run()
        first = engine.stats.instances_asserted
        assert first == 4  # both terms and both flips
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("c")))
        eg.rebuild()
        engine.run()
        assert engine.stats.instances_asserted == first

    def test_merge_during_saturation_does_not_reassert(self):
        """x*1=x merges mid-run; commutativity keys stay deduplicated."""
        eg = EGraph()
        eg.add_term(mk("add64", mk("mul64", inp("a"), const(1)), inp("b")))
        eg.add_term(mk("add64", inp("a"), inp("b")))
        engine = SaturationEngine(
            eg,
            _axioms(COMM + "\n" + IDENT),
            config=SaturationConfig(synthesize_constants=False),
        )
        engine.run()
        first = engine.stats.instances_asserted
        engine.run()
        assert engine.stats.instances_asserted == first
        assert engine.stats.quiescent


class TestBudgetHits:
    def _chain(self, eg, n=8):
        t = inp("x0")
        for i in range(1, n):
            t = mk("add64", t, inp("x%d" % i))
        eg.add_term(t)

    def test_max_rounds_recorded(self):
        reg = default_registry()
        eg = EGraph()
        self._chain(eg)
        axioms = math_axioms(reg).relevant_to({"add64"})
        stats = saturate(eg, axioms, reg, SaturationConfig(max_rounds=1))
        assert stats.budget_hits.get("max_rounds") == 1

    def test_max_enodes_recorded(self):
        reg = default_registry()
        eg = EGraph()
        self._chain(eg)
        axioms = math_axioms(reg).relevant_to({"add64"})
        stats = saturate(
            eg, axioms, reg, SaturationConfig(max_rounds=50, max_enodes=60)
        )
        assert "max_enodes_round" in stats.budget_hits

    def test_max_matches_recorded_per_trigger(self):
        eg = EGraph()
        self._chain(eg, n=4)
        stats = saturate(
            eg,
            _axioms(COMM),
            config=SaturationConfig(max_matches_per_trigger=1),
        )
        hits = stats.budget_hits.get("max_matches")
        assert hits and sum(hits.values()) >= 1

    def test_quiescent_run_records_nothing(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        stats = saturate(eg, _axioms(COMM))
        assert stats.quiescent
        assert stats.budget_hits == {}


class TestPartitionSignature:
    def test_insertion_order_irrelevant(self):
        a = EGraph()
        a.add_term(mk("add64", inp("p"), inp("q")))
        a.add_term(mk("mul64", inp("p"), const(3)))
        b = EGraph()
        b.add_term(mk("mul64", inp("p"), const(3)))
        b.add_term(mk("add64", inp("p"), inp("q")))
        assert partition_signature(a) == partition_signature(b)

    def test_merge_changes_signature(self):
        a = EGraph()
        a.add_term(mk("add64", inp("p"), inp("q")))
        b = EGraph()
        pq = b.add_term(mk("add64", inp("p"), inp("q")))
        before = partition_signature(b)
        assert before == partition_signature(a)
        b.merge(pq, b.add_term(inp("p")))
        b.rebuild()
        assert partition_signature(b) != before

    def test_distinguishes_sibling_classes(self):
        """Refinement separates classes an initial uniform label cannot."""
        eg = EGraph()
        eg.add_term(mk("add64", mk("add64", inp("a"), inp("b")), inp("c")))
        sig = partition_signature(eg)
        labels = [label for label, _size in sig]
        assert len(set(labels)) == len(labels)  # all classes distinguished


class TestFixpointParity:
    def _run(self, build, axioms, reg=None):
        results = []
        for incremental in (True, False):
            cfg = SaturationConfig(incremental_match=incremental)
            eg = EGraph()
            build(eg)
            stats = saturate(eg, axioms, reg, cfg)
            results.append((eg, stats))
        return results

    def test_figure2_goal_reaches_identical_fixpoint(self):
        reg = default_registry()
        axioms = _full_corpus(reg)

        def build(eg):
            eg.add_term(
                mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
            )

        (inc_eg, inc_stats), (nai_eg, nai_stats) = self._run(
            build, axioms, reg
        )
        assert inc_stats.quiescent and nai_stats.quiescent
        assert inc_eg.num_enodes() == nai_eg.num_enodes()
        assert partition_signature(inc_eg) == partition_signature(nai_eg)
        assert inc_stats.instances_asserted == nai_stats.instances_asserted

    def test_incremental_prunes_but_finds_the_same_matches(self):
        reg = default_registry()
        axioms = math_axioms(reg).relevant_to({"add64", "mul64"})

        def build(eg):
            t = inp("x0")
            for i in range(1, 5):
                t = mk("add64", t, inp("x%d" % i))
            eg.add_term(t)

        (inc_eg, inc_stats), (nai_eg, nai_stats) = self._run(
            build, axioms, reg
        )
        assert inc_eg.num_enodes() == nai_eg.num_enodes()
        assert partition_signature(inc_eg) == partition_signature(nai_eg)
        assert inc_stats.incremental and not nai_stats.incremental
        # The incremental path must actually skip quiescent head nodes.
        assert inc_stats.matches_pruned > 0
        assert nai_stats.matches_pruned == 0


class TestMatchingOracle:
    def test_oracle_passes_and_counts_on_clean_program(self):
        from repro.fuzz import OracleOptions, check_case
        from repro.fuzz.oracles import ORACLE_MATCHING

        source = (
            r"(\procdecl scale ((a long)) long"
            r"  (:= (\res (+ (* a 4) 1))))"
        )
        options = OracleOptions().narrowed_to(ORACLE_MATCHING)
        report = check_case(source, options)
        assert report.passed
        assert report.checks.get(ORACLE_MATCHING, 0) >= 1

    def test_narrowed_options_preserve_oracle(self):
        from repro.fuzz import OracleOptions
        from repro.fuzz.oracles import ORACLE_MATCHING

        options = OracleOptions().narrowed_to(ORACLE_MATCHING)
        assert options.oracles == (ORACLE_MATCHING,)


class TestStatsPlumbing:
    def test_stage_stats_serializes_matcher_counters(self):
        from repro.core.session import StageStats
        from repro.matching import SaturationStats

        stats = StageStats(label="t")
        stats.saturation = SaturationStats(
            rounds=3,
            instances_asserted=7,
            matches_attempted=40,
            matches_found=9,
            matches_pruned=31,
            quiescent=True,
            incremental=True,
            budget_hits={"max_matches": {"comm#0": 2}},
            per_axiom={"comm": {"seconds": 0.25, "matches": 9, "instances": 7}},
        )
        sat = stats.to_dict()["saturation"]
        assert sat["incremental"] is True
        assert sat["matches_attempted"] == 40
        assert sat["matches_pruned"] == 31
        assert sat["budget_hits"] == {"max_matches": {"comm#0": 2}}
        assert sat["per_axiom"]["comm"]["matches"] == 9
        assert set(sat["phase_seconds"]) == {
            "fold", "synthesize", "match", "propagate",
        }

    def test_aggregate_stats_sums_saturation_counters(self):
        from repro.core.session import StageStats, aggregate_stats
        from repro.matching import SaturationStats

        a = StageStats()
        a.saturation = SaturationStats(
            rounds=2, instances_asserted=5, matches_attempted=10,
            matches_pruned=4, quiescent=True, incremental=True,
        )
        b = StageStats()
        b.saturation = SaturationStats(
            rounds=4, instances_asserted=1, matches_attempted=6,
            matches_pruned=0, quiescent=False, incremental=False,
            budget_hits={"max_rounds": 4, "max_matches": {"x#0": 3}},
        )
        agg = aggregate_stats([a, b])["saturation"]
        assert agg["sessions"] == 2
        assert agg["incremental_sessions"] == 1
        assert agg["rounds"] == 6
        assert agg["quiescent"] == 1
        assert agg["matches_attempted"] == 16
        assert agg["budget_hits"] == {"max_rounds": 1, "max_matches": 3}


class TestSaturationHandle:
    @pytest.fixture(autouse=True)
    def fresh_global_cache(self):
        from repro.core.cache import global_saturation_cache

        global_saturation_cache().clear()
        yield
        global_saturation_cache().clear()

    def _session(self, **config_kwargs):
        from repro.core.pipeline import Denali, DenaliConfig
        from repro.core.session import CompilationSession
        from repro.isa import ev6
        from repro.lang.gma import GMA

        config = DenaliConfig(min_cycles=1, max_cycles=4, **config_kwargs)
        den = Denali(ev6(), config=config)
        goal = mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        return CompilationSession(den, GMA(("\\res",), (goal,)))

    def test_handle_unpacks_like_a_pair(self):
        handle = self._session().saturate()
        eg, goal_ids = handle
        assert eg is handle.egraph
        assert goal_ids == handle.goal_ids
        assert len(goal_ids) == 1

    def test_miss_freezes_snapshot_and_hit_restores_it(self):
        from repro.core.cache import global_saturation_cache

        first = self._session().saturate()
        assert first.snapshot is not None
        assert global_saturation_cache().stats.misses == 1
        second = self._session().saturate()
        assert global_saturation_cache().stats.hits == 1
        assert second.snapshot is first.snapshot  # the shared LRU entry
        assert second.egraph is not first.egraph
        assert partition_signature(second.egraph) == partition_signature(
            first.egraph
        )

    def test_cache_disabled_leaves_snapshot_unset(self):
        handle = self._session(enable_saturation_cache=False).saturate()
        assert handle.snapshot is None

    def test_key_separates_matching_modes(self):
        from repro.core.cache import saturation_key

        reg = default_registry()
        axioms = math_axioms(reg)
        goals = (mk("add64", inp("a"), const(1)),)
        inc = saturation_key(
            goals, axioms, reg, SaturationConfig(incremental_match=True)
        )
        naive = saturation_key(
            goals, axioms, reg, SaturationConfig(incremental_match=False)
        )
        assert inc != naive
