"""Tests for profile-derived memory-latency annotations (paper section 6).

"the first step is to use profiling tools to determine which memory
accesses miss in the cache.  Having found this information, the programmer
can communicate it to Denali using annotations in the Denali source
program. ... latency annotations are important for performance but not for
correctness: the code generated will be correct even if the annotations
are inaccurate."
"""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    GMA,
    SearchStrategy,
    Sort,
    const,
    ev6,
    inp,
    mk,
    parse_program,
    software_pipeline,
    translate_procedure,
)
from repro.matching import SaturationConfig


def _config(max_cycles=18, miss_latency=12):
    return DenaliConfig(
        min_cycles=1,
        max_cycles=max_cycles,
        strategy=SearchStrategy.BINARY,
        miss_latency=miss_latency,
        saturation=SaturationConfig(max_rounds=6, max_enodes=1000),
    )


def _load_gma(annotate: bool) -> GMA:
    load = mk("select", inp("M", Sort.MEM), inp("p"))
    return GMA(
        ("\\res",),
        (mk("add64", load, const(1)),),
        slow_loads=(load,) if annotate else (),
    )


class TestLatencyAnnotations:
    def test_annotation_lengthens_schedule(self):
        den = Denali(ev6(), config=_config())
        fast = den.compile_gma(_load_gma(annotate=False))
        slow = den.compile_gma(_load_gma(annotate=True))
        assert fast.cycles == 4  # ldq(3) + addq(1)
        assert slow.cycles == 13  # ldq(12) + addq(1)
        assert fast.optimal and slow.optimal

    def test_annotation_does_not_affect_correctness(self):
        """The paper's key point: annotations never change the values."""
        den = Denali(ev6(), config=_config())
        slow = den.compile_gma(_load_gma(annotate=True))
        assert slow.verified

    def test_miss_latency_configurable(self):
        den = Denali(ev6(), config=_config(miss_latency=6))
        slow = den.compile_gma(_load_gma(annotate=True))
        assert slow.cycles == 7

    def test_independent_work_overlaps_the_miss(self):
        """With a long-latency load, independent ALU work hides under it
        instead of extending the schedule."""
        load = mk("select", inp("M", Sort.MEM), inp("p"))
        busy = inp("x")
        for _ in range(4):
            busy = mk("add64", busy, const(1))
        gma = GMA(
            ("r", "s"),
            (mk("add64", load, const(1)), busy),
            slow_loads=(load,),
        )
        den = Denali(ev6(), config=_config())
        result = den.compile_gma(gma)
        assert result.cycles == 13  # the chain hides entirely under the miss
        assert result.verified

    def test_miss_syntax_in_source(self):
        program = parse_program(
            r"""(\procdecl f ((p (\ref long))) long
                 (:= (\res (+ (\miss (\deref p)) 1))))"""
        )
        gmas = dict(translate_procedure(program.procedure("f"), program.registry))
        tail = gmas["f.tail"]
        assert len(tail.slow_loads) == 1
        assert tail.slow_loads[0].op == "select"

    def test_miss_must_wrap_a_load(self):
        from repro.lang.translate import TranslationError

        with pytest.raises(TranslationError):
            parse_program_and_translate(
                r"""(\procdecl f ((a long)) long
                     (:= (\res (\miss (+ a 1)))))"""
            )

    def test_unannotated_loads_unaffected(self):
        """Annotating one load must not slow a different one."""
        m = inp("M", Sort.MEM)
        slow_load = mk("select", m, inp("p"))
        fast_load = mk("select", m, inp("q"))
        gma = GMA(
            ("r", "s"),
            (mk("add64", slow_load, const(1)), mk("add64", fast_load, const(1))),
            slow_loads=(slow_load,),
        )
        den = Denali(ev6(), config=_config())
        result = den.compile_gma(gma)
        assert result.verified
        # Makespan is set by the slow load; the fast chain fits beneath it.
        assert result.cycles == 13

    def test_annotations_survive_software_pipelining(self):
        m = inp("M", Sort.MEM)
        load = mk("select", m, inp("ptr"))
        gma = GMA(
            ("sum", "ptr"),
            (mk("add64", inp("sum"), load), mk("add64", inp("ptr"), const(8))),
            guard=mk("cmpult", inp("ptr"), inp("end")),
            slow_loads=(load,),
        )
        pipelined = software_pipeline(gma)
        assert len(pipelined.gma.slow_loads) == 1
        # The annotation moved to the advanced (next-iteration) load.
        annotated = pipelined.gma.slow_loads[0]
        assert annotated.op == "select"
        assert annotated in set(
            s for v in pipelined.gma.newvals for s in _subs(v)
        )


def _subs(t):
    from repro.terms import subterms

    return set(subterms(t))


def parse_program_and_translate(src):
    program = parse_program(src)
    return translate_procedure(program.procedures[0], program.registry)
