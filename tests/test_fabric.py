"""Integration tests for the compilation fabric (nodes, sharding, shed).

Fast tests drive real :class:`FabricNode` instances on ephemeral ports
with diagnostic ``sleep`` jobs (distinct ``seed`` values give distinct
fingerprints without compile cost), covering the ISSUE's acceptance
points: sharded submission with qualified job ids, 307 redirects for
plain clients, ring-aware client routing, result gossip, corpus
shipping to a joining node, dead-node rerouting, and 429 load-shedding
with a usable ``Retry-After``.  The one real-compile test (warm-corpus
shipping) runs the smallest workload once.
"""

import time

import pytest

from repro.fabric import FabricClient, FabricNode, is_fabric
from repro.service import (
    CompilationEngine,
    JobSpec,
    ServiceClient,
    ServiceOverloadError,
    ServiceServer,
    default_corpus_key,
    job_fingerprint,
)

SIMPLE = r"""
(\procdecl scale ((a long)) long
  (:= (\res (+ (* a 4) 1))))
"""


def sleep_spec(seed, seconds=0.0):
    """A diagnostic job; distinct seeds → distinct fingerprints."""
    return JobSpec(kind="sleep", seconds=seconds, seed=seed)


def compile_spec(source=SIMPLE, **kwargs):
    defaults = dict(
        kind="compile",
        source=source,
        name="test.dn",
        strategy="linear",
        min_cycles=1,
        max_cycles=10,
        max_rounds=8,
        max_enodes=2500,
    )
    defaults.update(kwargs)
    return JobSpec(**defaults)


def boot(peers=None, **kwargs):
    defaults = dict(workers=1, health_interval=0.1)
    defaults.update(kwargs)
    node = FabricNode(peers=peers, **defaults)
    node.start()
    return node


@pytest.fixture
def node():
    n = boot()
    yield n
    n.stop(drain=False)


@pytest.fixture
def pair():
    a = boot()
    b = boot(peers=[a.url])
    yield a, b
    b.stop(drain=False)
    a.stop(drain=False)


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- one node ------------------------------------------------------------------


class TestSingleNode:
    def test_submit_result_qualified_id(self, node):
        client = FabricClient(node.url)
        try:
            (job_id,) = client.submit([sleep_spec(1)])
            assert job_id.endswith("@%s" % node.node_id)
            payload = client.result(job_id, timeout=10.0)
            assert payload["state"] == "done"
            assert payload["result"]["ok"] is True
        finally:
            client.close()

    def test_healthz_ring_and_fabric_metrics(self, node):
        client = ServiceClient(node.url)
        try:
            health = client._request("/healthz")
            assert health["ok"] and health["node"] == node.node_id
            ring = client._request("/v1/fabric/ring")
            assert [n["id"] for n in ring["nodes"]] == [node.node_id]
            metrics = client.metrics()
            fabric = metrics["fabric"]
            assert fabric["node"] == node.node_id
            assert fabric["admission"]["max_queue"] == node.max_queue
            assert "/healthz" in fabric["endpoints"]
        finally:
            client.close()

    def test_is_fabric_discriminates(self, node):
        fabric_probe = ServiceClient(node.url)
        engine = CompilationEngine(workers=1)
        server = ServiceServer(engine)
        server.start()
        blocking_probe = ServiceClient(server.url)
        try:
            assert is_fabric(fabric_probe) is True
            assert is_fabric(blocking_probe) is False
        finally:
            blocking_probe.close()
            fabric_probe.close()
            server.stop(drain=False)

    def test_unknown_job_and_route(self, node):
        client = ServiceClient(node.url)
        try:
            with pytest.raises(Exception):
                client.status("nope@%s" % node.node_id)
            with pytest.raises(Exception):
                client._request("/v1/no/such/route")
        finally:
            client.close()


# -- load shedding -------------------------------------------------------------


class TestShedding:
    def test_backlog_shed_429_with_retry_after(self):
        node = boot(max_queue=2)
        client = ServiceClient(node.url)
        try:
            ids = [
                client.submit([sleep_spec(seed, seconds=1.0)])[0]
                for seed in (1, 2)
            ]
            with pytest.raises(ServiceOverloadError) as excinfo:
                client.submit([sleep_spec(3, seconds=1.0)])
            assert excinfo.value.retry_after >= 1
            metrics = client.metrics()
            admission = metrics["fabric"]["admission"]
            assert (
                admission["shed_backlog"] + admission["shed_queue_full"]
                >= 1
            )
            shed = metrics["fabric"]["endpoints"]["/v1/submit"]["shed"]
            assert shed >= 1
            # Health stays answerable while shedding.
            assert client._request("/healthz")["ok"] is True
            # Once the backlog drains, admission reopens.
            for job_id in ids:
                client.result(job_id, timeout=15.0)
            assert wait_until(lambda: node.engine.backlog() == 0)
            (late,) = client.submit([sleep_spec(4)])
            assert client.result(late, timeout=10.0)["state"] == "done"
        finally:
            client.close()
            node.stop(drain=False)

    def test_fabric_client_honors_retry_after(self):
        node = boot(max_queue=1)
        client = FabricClient(node.url, shed_retries=5)
        try:
            (first,) = client.submit([sleep_spec(1, seconds=0.5)])
            (second,) = client.submit([sleep_spec(2)])  # retries through
            for job_id in (first, second):
                assert (
                    client.result(job_id, timeout=15.0)["state"] == "done"
                )
        finally:
            client.close()
            node.stop(drain=False)


# -- two nodes -----------------------------------------------------------------


class TestTwoNodes:
    def test_membership_converges(self, pair):
        a, b = pair
        ids = {a.node_id, b.node_id}
        assert set(a.registry.alive_ids()) == ids
        assert set(b.registry.alive_ids()) == ids

    def test_sharded_submit_matches_ring(self, pair):
        a, b = pair
        client = FabricClient(a.url)
        try:
            specs = [sleep_spec(seed) for seed in range(16)]
            ids = client.submit(specs)
            view = client.ring()
            owners = set()
            for spec, job_id in zip(specs, ids):
                expected = view.ring.node_for(
                    job_fingerprint(spec), alive=view.alive
                )
                assert job_id.endswith("@" + expected)
                owners.add(expected)
            assert owners == {a.node_id, b.node_id}
            for job_id in ids:
                assert (
                    client.result(job_id, timeout=15.0)["state"] == "done"
                )
        finally:
            client.close()

    def test_plain_client_follows_redirects(self, pair):
        a, b = pair
        # Submit directly to B so the job is B-local, then poll via A:
        # A answers with a 307 the plain client follows.
        submit_client = ServiceClient(b.url)
        poll_client = ServiceClient(a.url)
        try:
            (job_id,) = submit_client.submit([sleep_spec(99)])
            # Route the id that lives on one node through the other.
            owner = job_id.rsplit("@", 1)[1]
            other = poll_client if owner == b.node_id else submit_client
            payload = other.result(job_id, timeout=10.0)
            assert payload["state"] == "done"
        finally:
            submit_client.close()
            poll_client.close()

    def test_results_gossip_to_both_stores(self, pair):
        # Only compile results are stored (and therefore gossiped), so
        # this one drives two real (tiny) compiles.
        a, b = pair
        client = FabricClient(a.url)
        try:
            specs = [
                compile_spec(SIMPLE.replace("4", str(multiplier)))
                for multiplier in (4, 8)
            ]
            ids = client.submit(specs)
            for job_id in ids:
                client.result(job_id, timeout=60.0)
            for node in pair:
                node._gossip.flush(timeout=5.0)
            fingerprints = [job_fingerprint(spec) for spec in specs]
            assert wait_until(
                lambda: all(fp in a.store for fp in fingerprints)
                and all(fp in b.store for fp in fingerprints),
                timeout=15.0,
            ), "results did not replicate to both stores"
            received = (
                a.store.stats.to_dict()["received"]
                + b.store.stats.to_dict()["received"]
            )
            assert received >= len(specs)
        finally:
            client.close()

    def test_zero_lost_jobs_in_burst(self, pair):
        a, _ = pair
        client = FabricClient(a.url)
        try:
            specs = [sleep_spec(seed) for seed in range(40)]
            ids = client.submit(specs)
            assert len(ids) == len(specs) and None not in ids
            assert len(set(ids)) == len(ids)
            for job_id in ids:
                payload = client.result(job_id, timeout=30.0)
                assert payload["state"] == "done"
        finally:
            client.close()

    def test_dead_peer_reroutes_to_survivor(self, pair):
        a, b = pair
        b.stop(drain=False)
        assert wait_until(
            lambda: b.node_id not in a.registry.alive_ids(), timeout=10.0
        ), "health loop never declared the dead peer"
        client = ServiceClient(a.url)
        try:
            specs = [sleep_spec(seed) for seed in range(8)]
            ids = client.submit(specs)
            for job_id in ids:
                assert job_id.endswith("@" + a.node_id)
                assert (
                    client.result(job_id, timeout=15.0)["state"] == "done"
                )
        finally:
            client.close()


# -- corpus shipping -----------------------------------------------------------


class TestCorpusShipping:
    def test_joining_node_starts_warm(self):
        a = boot()
        b = None
        client = FabricClient(a.url)
        try:
            spec = JobSpec(
                kind="compile",
                source=SIMPLE,
                name="warm.dn",
                strategy="linear",
                min_cycles=1,
                max_cycles=10,
                max_rounds=8,
                max_enodes=2500,
            )
            (job_id,) = client.submit([spec])
            assert client.result(job_id, timeout=60.0)["state"] == "done"
            key = default_corpus_key()
            assert wait_until(
                lambda: a.store.corpus_blob_get(key) is not None,
                timeout=10.0,
            ), "compile did not persist the corpus blob"
            b = boot(peers=[a.url])
            assert b.corpus_source == "shipped"
            assert b.engine.corpus_warmed is True
            assert b.store.corpus_blob_get(key) is not None
        finally:
            client.close()
            if b is not None:
                b.stop(drain=False)
            a.stop(drain=False)
