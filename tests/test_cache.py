"""Tests for the cross-probe / cross-compilation cache layer."""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    EGraph,
    SearchStrategy,
    const,
    default_registry,
    ev6,
    global_saturation_cache,
    inp,
    mk,
    saturate,
)
from repro.axioms import math_axioms, parse_axiom_file
from repro.core.cache import (
    SaturationCache,
    axioms_fingerprint,
    global_axiom_cache,
    registry_fingerprint,
    saturation_key,
)
from repro.matching import SaturationConfig


def _goal():
    return mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))


def _config(**kwargs):
    defaults = dict(min_cycles=1, max_cycles=6, strategy=SearchStrategy.BINARY)
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


@pytest.fixture(autouse=True)
def fresh_global_cache():
    global_saturation_cache().clear()
    yield
    global_saturation_cache().clear()


class TestFingerprints:
    def test_same_registry_signatures_share_fingerprint(self):
        assert registry_fingerprint(default_registry()) == registry_fingerprint(
            default_registry()
        )

    def test_axiom_fingerprint_tracks_contents(self):
        reg = default_registry()
        base = math_axioms(reg)
        assert axioms_fingerprint(base) == axioms_fingerprint(math_axioms(reg))
        extra = base + parse_axiom_file(
            r"(\axiom (forall (x) (pats (\add64 x 0)) (eq (\add64 x 0) x)))",
            reg,
        )
        assert axioms_fingerprint(base) != axioms_fingerprint(extra)

    def test_saturation_key_sensitive_to_config(self):
        reg = default_registry()
        axioms = math_axioms(reg)
        goals = (_goal(),)
        k1 = saturation_key(goals, axioms, reg, SaturationConfig())
        k2 = saturation_key(goals, axioms, reg, SaturationConfig())
        k3 = saturation_key(goals, axioms, reg, SaturationConfig(max_rounds=2))
        assert k1 == k2
        assert k1 != k3


class TestSaturationCache:
    def _saturated(self, goals):
        reg = default_registry()
        axioms = math_axioms(reg)
        eg = EGraph()
        ids = [eg.add_term(t) for t in goals]
        stats = saturate(eg, axioms, reg, SaturationConfig())
        return eg, [eg.find(i) for i in ids], stats

    def test_hit_on_identical_goal_terms(self):
        cache = SaturationCache()
        reg = default_registry()
        axioms = math_axioms(reg)
        goals = (_goal(),)
        key = saturation_key(goals, axioms, reg, SaturationConfig())
        assert cache.lookup(key) is None
        eg, _ids, stats = self._saturated(goals)
        cache.store(key, eg, stats)
        # Goal terms are interned: rebuilding the "same" term yields the
        # identical key and hits.
        key2 = saturation_key((_goal(),), axioms, reg, SaturationConfig())
        hit = cache.lookup(key2)
        assert hit is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_miss_on_differing_axiom_sets(self):
        cache = SaturationCache()
        reg = default_registry()
        goals = (_goal(),)
        base = math_axioms(reg)
        eg, _ids, stats = self._saturated(goals)
        cache.store(key=saturation_key(goals, base, reg, SaturationConfig()),
                    eg=eg, stats=stats)
        trimmed = base + parse_axiom_file(
            r"(\axiom (forall (x) (pats (\mul64 x 1)) (eq (\mul64 x 1) x)))",
            reg,
        )
        assert cache.lookup(
            saturation_key(goals, trimmed, reg, SaturationConfig())
        ) is None

    def test_hit_returns_independent_copy(self):
        cache = SaturationCache()
        reg = default_registry()
        axioms = math_axioms(reg)
        goals = (_goal(),)
        key = saturation_key(goals, axioms, reg, SaturationConfig())
        eg, _ids, stats = self._saturated(goals)
        cache.store(key, eg, stats)
        first = cache.lookup(key)[0]
        nodes_before = len(list(first.all_nodes()))
        # Mutating the handed-out copy must not contaminate the master.
        first.add_term(mk("sub64", inp("reg9"), const(7)))
        second = cache.lookup(key)[0]
        assert len(list(second.all_nodes())) == nodes_before

    def test_copy_preserves_classes_and_nodes(self):
        eg, ids, _stats = self._saturated((_goal(),))
        clone = eg.copy()
        assert len(list(clone.all_nodes())) == len(list(eg.all_nodes()))
        for i in ids:
            assert clone.find(i) == eg.find(i)
            assert {n.op for n in clone.enodes(i)} == {
                n.op for n in eg.enodes(i)
            }

    def test_lru_eviction(self):
        cache = SaturationCache(max_entries=2)
        eg, _ids, stats = self._saturated((_goal(),))
        cache.store("a", eg, stats)
        cache.store("b", eg, stats)
        cache.store("c", eg, stats)  # evicts "a"
        assert len(cache) == 2
        assert cache.lookup("a") is None
        assert cache.lookup("b") is not None


class TestAxiomCorpusCache:
    def test_shared_across_denali_instances(self):
        cache = global_axiom_cache()
        den1 = Denali(ev6())
        den2 = Denali(ev6())
        assert den1.axioms is den2.axioms
        assert cache.stats.hits >= 1


class TestCachedCompilationEquivalence:
    """Cached and uncached compilations produce byte-identical assembly."""

    GOALS = [
        mk("add64", mk("mul64", inp("reg6"), const(4)), const(1)),
        mk("and64", mk("add64", inp("a"), inp("b")), const(255)),
        mk("mul64", inp("a"), const(8)),
    ]

    @pytest.mark.parametrize("idx", range(len(GOALS)))
    def test_byte_identical_assembly(self, idx):
        goal = self.GOALS[idx]
        cold = Denali(ev6(), config=_config()).compile_term(goal)
        assert cold.stats.cache["saturation_misses"] == 1
        warm = Denali(ev6(), config=_config()).compile_term(goal)
        assert warm.stats.cache["saturation_hits"] == 1
        uncached = Denali(
            ev6(), config=_config(enable_saturation_cache=False)
        ).compile_term(goal)
        assert uncached.stats.cache["saturation_hits"] == 0
        assert cold.cycles == warm.cycles == uncached.cycles
        assert cold.optimal == warm.optimal == uncached.optimal
        assert cold.assembly == warm.assembly == uncached.assembly
        assert cold.verified and warm.verified and uncached.verified

    def test_cache_survives_across_strategies(self):
        goal = self.GOALS[0]
        linear = Denali(
            ev6(), config=_config(strategy=SearchStrategy.LINEAR)
        ).compile_term(goal)
        binary = Denali(ev6(), config=_config()).compile_term(goal)
        assert binary.stats.cache["saturation_hits"] == 1
        assert linear.assembly == binary.assembly
