"""Property tests for the fabric's consistent-hash ring.

The ring is the one component whose correctness is *distributed*: every
node (and every ring-aware client) rebuilds it independently from the
membership list, and they must all agree about who owns each job
fingerprint.  These tests pin the three properties that agreement rests
on:

* **determinism** — placement is a pure function of (membership,
  vnodes, key), identical across processes and hash seeds
  (``blake2b``, not ``hash()``) and independent of insertion order;
* **minimal remap** — adding a node only steals keys *for* that node,
  removing one only reassigns keys it owned: the property that keeps
  per-node warm stores hot across membership changes;
* **balance** — with 64 virtual nodes, no member's share of 1k keys
  strays beyond 2.5x the fair share (empirical worst case over random
  memberships is ~1.7x).
"""

import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.ring import (
    HashRing,
    NodeRegistry,
    placement,
    ring_from_description,
    stable_hash,
)

node_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
        min_size=1,
        max_size=24,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


def keyset(count, salt=""):
    return ["fp-%s-%d" % (salt, i) for i in range(count)]


# -- determinism ---------------------------------------------------------------


class TestDeterminism:
    def test_stable_hash_is_not_pythons_hash(self):
        # Pinned value: changing the hash function silently re-shards
        # every deployed fabric, so it must be an explicit decision.
        assert stable_hash("fp-0") == 12148146083771509795

    @given(nodes=node_names)
    @settings(max_examples=25, deadline=None)
    def test_insertion_order_never_matters(self, nodes):
        keys = keyset(100)
        forward = placement(nodes, keys, vnodes=16)
        backward = placement(list(reversed(nodes)), keys, vnodes=16)
        assert forward == backward

    def test_identical_across_processes_and_hash_seeds(self):
        nodes = ["alpha", "beta", "gamma"]
        keys = keyset(200, salt="xproc")
        script = (
            "from repro.fabric.ring import placement\n"
            "owners = placement(%r, %r, vnodes=64)\n"
            "print('|'.join(owners[k] for k in %r))\n" % (nodes, keys, keys)
        )
        outputs = set()
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                cwd=None,
                check=True,
            )
            outputs.add(proc.stdout.strip())
        local = placement(nodes, keys, vnodes=64)
        outputs.add("|".join(local[k] for k in keys))
        assert len(outputs) == 1

    def test_registry_and_client_view_agree(self):
        registry = NodeRegistry("http://127.0.0.1:1", vnodes=32)
        for port in (2, 3, 4):
            registry.add_peer("http://127.0.0.1:%d" % port)
        view = ring_from_description(registry.describe())
        for key in keyset(300, salt="view"):
            owner = registry.owner_of(key)
            assert view.url_for_key(key) == view.url_of(owner)


# -- minimal remap -------------------------------------------------------------


class TestMinimalRemap:
    @given(nodes=node_names, joiner=st.text(min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_join_only_steals_for_the_new_node(self, nodes, joiner):
        if joiner in nodes:
            return
        keys = keyset(300, salt="join")
        before = placement(nodes, keys, vnodes=16)
        after = placement(nodes + [joiner], keys, vnodes=16)
        moved = [k for k in keys if before[k] != after[k]]
        assert all(after[k] == joiner for k in moved)

    @given(nodes=node_names, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_leave_only_moves_the_leavers_keys(self, nodes, data):
        leaver = data.draw(st.sampled_from(nodes))
        keys = keyset(300, salt="leave")
        before = placement(nodes, keys, vnodes=16)
        after = placement(
            [n for n in nodes if n != leaver], keys, vnodes=16
        )
        for key in keys:
            if before[key] != leaver:
                assert after[key] == before[key]

    def test_dead_node_spills_then_snaps_back(self):
        ring = HashRing(vnodes=32)
        for node in ("a", "b", "c"):
            ring.add_node(node)
        keys = keyset(300, salt="dead")
        healthy = {k: ring.node_for(k) for k in keys}
        degraded = {
            k: ring.node_for(k, alive={"a", "c"}) for k in keys
        }
        for key in keys:
            if healthy[key] != "b":
                assert degraded[key] == healthy[key]
            else:
                assert degraded[key] in ("a", "c")
        recovered = {k: ring.node_for(k) for k in keys}
        assert recovered == healthy

    def test_replica_sets_are_distinct_owners(self):
        ring = HashRing(vnodes=32)
        for node in ("a", "b", "c", "d"):
            ring.add_node(node)
        for key in keyset(50, salt="replicas"):
            owners = ring.nodes_for(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.node_for(key)


# -- balance -------------------------------------------------------------------


class TestBalance:
    @given(nodes=node_names)
    @settings(max_examples=15, deadline=None)
    def test_share_within_bound_across_1k_fingerprints(self, nodes):
        keys = keyset(1000, salt="balance")
        owners = placement(nodes, keys, vnodes=64)
        counts = {node: 0 for node in nodes}
        for owner in owners.values():
            counts[owner] += 1
        fair = len(keys) / len(nodes)
        for node, count in counts.items():
            assert count <= 2.5 * fair, (node, count, fair)
            assert count >= fair / 2.5, (node, count, fair)


# -- membership bookkeeping ----------------------------------------------------


class TestRegistry:
    def test_death_threshold_and_recovery(self):
        registry = NodeRegistry(
            "http://127.0.0.1:1", vnodes=8, death_threshold=3
        )
        peer = registry.add_peer("http://127.0.0.1:2")
        registry.mark_failed(peer)
        registry.mark_failed(peer)
        assert peer in registry.alive_ids()
        registry.mark_failed(peer)
        assert peer not in registry.alive_ids()
        assert registry.owner_of("anything") == registry.self_id
        registry.mark_ok(peer)
        assert peer in registry.alive_ids()

    def test_version_counts_membership_and_liveness_changes(self):
        registry = NodeRegistry("http://127.0.0.1:1", vnodes=8)
        v0 = registry.version
        peer = registry.add_peer("http://127.0.0.1:2")
        assert registry.version == v0 + 1
        registry.add_peer("http://127.0.0.1:2/")  # idempotent
        assert registry.version == v0 + 1
        for _ in range(registry.death_threshold):
            registry.mark_failed(peer)
        assert registry.version == v0 + 2
        registry.remove_peer(peer)
        assert registry.version == v0 + 3

    def test_self_is_never_marked_dead_or_removed(self):
        registry = NodeRegistry("http://127.0.0.1:1", vnodes=8)
        for _ in range(10):
            registry.mark_failed(registry.self_id)
        registry.remove_peer(registry.self_id)
        assert registry.self_id in registry.alive_ids()
