"""Tests for s-expressions, the axiom parser, and the built-in axiom files.

The heavyweight test here is soundness: every built-in equality axiom is
checked against the executable reference semantics on random and
adversarial values.  An unsound axiom would make Denali emit wrong code,
so this is the load-bearing wall of the whole reproduction.
"""

import random

import pytest

from repro.axioms import (
    AxiomClause,
    AxiomDistinction,
    AxiomEquality,
    AxiomParseError,
    Pattern,
    SExprError,
    alpha_axioms,
    checksum_axioms,
    constant_synthesis_axioms,
    math_axioms,
    parse_axiom,
    parse_axiom_file,
    parse_sexprs,
)
from repro.axioms.sexpr import render_sexpr
from repro.terms import Memory, Sort, default_registry
from repro.terms.evaluator import Evaluator
from repro.terms.values import M64


class TestSExpr:
    def test_atoms(self):
        assert parse_sexprs("foo 42 -7") == ["foo", 42, -7]

    def test_hex_literal(self):
        assert parse_sexprs("0xff") == [255]

    def test_nested_lists(self):
        assert parse_sexprs("(a (b 1) c)") == [["a", ["b", 1], "c"]]

    def test_backslash_symbols(self):
        assert parse_sexprs(r"(\add64 a b)") == [["\\add64", "a", "b"]]

    def test_comments_stripped(self):
        assert parse_sexprs("; hello\n(a) ; trailing\n") == [["a"]]

    def test_unbalanced_open_rejected(self):
        with pytest.raises(SExprError):
            parse_sexprs("(a (b)")

    def test_unbalanced_close_rejected(self):
        with pytest.raises(SExprError):
            parse_sexprs("a)")

    def test_render_roundtrip(self):
        src = "(eq (\\add64 a 1) (\\add64 1 a))"
        parsed = parse_sexprs(src)[0]
        assert parse_sexprs(render_sexpr(parsed))[0] == parsed

    def test_multiple_toplevel(self):
        assert len(parse_sexprs("(a) (b) (c)")) == 3


class TestPattern:
    def test_variables(self):
        p = Pattern.apply("add64", Pattern.variable("x"), Pattern.constant(1))
        assert p.variables() == {"x"}

    def test_instantiate(self):
        from repro.terms import inp, mk

        p = Pattern.apply("add64", Pattern.variable("x"), Pattern.constant(1))
        t = p.instantiate({"x": inp("a")})
        assert t is mk("add64", inp("a"), const_one())

    def test_instantiate_unbound_raises(self):
        p = Pattern.variable("x")
        with pytest.raises(KeyError):
            p.instantiate({})

    def test_pretty(self):
        p = Pattern.apply("sll", Pattern.variable("k"), Pattern.constant(2))
        assert p.pretty() == "(sll ?k 2)"


def const_one():
    from repro.terms import const

    return const(1)


class TestAxiomParser:
    def test_equality(self):
        ax = parse_axiom(
            parse_sexprs(
                r"(forall (x y) (pats (\add64 x y)) (eq (\add64 x y) (\add64 y x)))"
            )[0]
        )
        assert isinstance(ax, AxiomEquality)
        assert ax.variables == ("x", "y")

    def test_default_trigger_from_lhs(self):
        ax = parse_axiom(
            parse_sexprs(r"(forall (x) (eq (\not64 (\not64 x)) x))")[0]
        )
        assert len(ax.triggers) == 1
        assert ax.triggers[0].op == "not64"

    def test_trigger_must_bind_all_vars(self):
        with pytest.raises((AxiomParseError, ValueError)):
            parse_axiom(
                parse_sexprs(
                    r"(forall (x y) (pats (\not64 x)) (eq (\not64 x) y))"
                )[0]
            )

    def test_distinction(self):
        ax = parse_axiom(
            parse_sexprs(r"(forall (x) (neq (\add64 x 1) x))")[0]
        )
        assert isinstance(ax, AxiomDistinction)

    def test_clause(self):
        ax = parse_axiom(
            parse_sexprs(
                r"""(forall (a i j x) (pats (\select (\store a i x) j))
                     (or (eq i j)
                         (eq (\select (\store a i x) j) (\select a j))))"""
            )[0]
        )
        assert isinstance(ax, AxiomClause)
        assert len(ax.literals) == 2

    def test_ground_axiom(self):
        ax = parse_axiom(parse_sexprs(r"(eq (\add64 1 2) 3)")[0])
        assert isinstance(ax, AxiomEquality)
        assert ax.variables == ()

    def test_unknown_operator_rejected(self):
        with pytest.raises(AxiomParseError):
            parse_axiom(parse_sexprs("(eq (frob x) x)")[0])

    def test_wrong_arity_rejected(self):
        with pytest.raises(AxiomParseError):
            parse_axiom(parse_sexprs(r"(forall (x) (eq (\add64 x) x))")[0])

    def test_bare_unquantified_symbol_rejected(self):
        with pytest.raises(AxiomParseError):
            parse_axiom(parse_sexprs(r"(forall (x) (eq (\not64 x) y))")[0])

    def test_axiom_file(self):
        axioms = parse_axiom_file(
            r"""
            ; a comment
            (\axiom (forall (x) (pats (\add64 x 0)) (eq (\add64 x 0) x)))
            (\axiom (forall (x) (pats (\mul64 x 1)) (eq (\mul64 x 1) x)))
            """
        )
        assert len(axioms) == 2

    def test_axiom_file_rejects_other_forms(self):
        with pytest.raises(AxiomParseError):
            parse_axiom_file("(\\opdecl f (long) long)")

    def test_program_local_operator(self):
        reg = default_registry()
        reg.declare("carry", (Sort.INT, Sort.INT), Sort.INT)
        ax = parse_axiom(
            parse_sexprs(
                r"(forall (a b) (pats (carry a b)) (eq (carry a b) (\cmpult (\add64 a b) a)))"
            )[0],
            reg,
        )
        assert ax.lhs.op == "carry"


class TestAxiomSet:
    def test_concatenation(self):
        s = math_axioms() + alpha_axioms()
        assert len(s) == len(math_axioms()) + len(alpha_axioms())

    def test_relevant_to_filters(self):
        s = math_axioms().relevant_to({"add64"})
        assert 0 < len(s) < len(math_axioms())
        for ax in s:
            assert any(
                t.op == "add64" or t.is_var or t.is_const for t in ax.triggers
            )

    def test_definitions_extracted(self):
        reg = default_registry()
        reg, axioms = checksum_axioms(reg)
        defs = axioms.definitions()
        assert "carry" in defs
        assert "add" in defs
        params, rhs = defs["carry"]
        assert params == ("a", "b")
        assert rhs.op == "cmpult"

    def test_definitions_skip_commutativity(self):
        reg = default_registry()
        reg, axioms = checksum_axioms(reg)
        params, rhs = axioms.definitions()["add"]
        # The chosen definition must not mention `add` itself.
        def ops(p):
            if p.is_var or p.is_const:
                return set()
            out = {p.op}
            for a in p.args:
                out |= ops(a)
            return out

        assert "add" not in ops(rhs)

    def test_definitions_skip_mutual_recursion(self):
        # cmovlt -> cmovge and cmovge -> cmovlt would expand forever;
        # the axiom that closes the loop must lose (rv64 seed-0
        # campaign regression: RecursionError in the baseline lowerer).
        reg = default_registry()
        axioms = parse_axiom_file(
            r"""
            (\axiom (forall (t x y) (pats (\cmovlt t x y))
                (eq (\cmovlt t x y) (\cmovge t y x))))
            (\axiom (forall (t x y) (pats (\cmovge t x y))
                (eq (\cmovge t x y) (\cmovlt t y x))))
            """,
            reg,
            name="loop",
        )
        defs = axioms.definitions()
        assert "cmovlt" in defs
        assert "cmovge" not in defs

    def test_rv64_corpus_definitions_are_grounded(self):
        # The target sublayer precedes the universal files, so the
        # grounded mask-form cmov lowerings win over math's swap forms
        # and every cmov definition bottoms out in machine arithmetic.
        from repro.axioms import default_axiom_corpus

        defs = default_axiom_corpus(default_registry(), "rv64").definitions()
        assert defs["cmovlt"][1].op == "bis"
        assert defs["cmoveq"][1].op == "bis"
        assert defs["cmovge"][1].op == "cmovlt"  # one grounded hop away


# ---------------------------------------------------------------------------
# Soundness of the built-in axiom corpus
# ---------------------------------------------------------------------------


def _infer_var_sorts(axiom, registry):
    """Infer each variable's sort from the positions it occupies."""
    sorts = {}

    def walk(pattern, expected):
        if pattern.is_var:
            sorts.setdefault(pattern.var, expected)
            return
        if pattern.is_const:
            return
        sig = registry.get(pattern.op)
        for arg, want in zip(pattern.args, sig.params):
            walk(arg, want)

    pats = []
    if isinstance(axiom, (AxiomEquality, AxiomDistinction)):
        pats = [(axiom.lhs, None), (axiom.rhs, None)]
    else:
        for _, l, r in axiom.literals:
            pats += [(l, None), (r, None)]
    for p, _ in pats:
        walk(p, Sort.INT)
    return sorts


def _random_value(sort, rng):
    if sort == Sort.MEM:
        seed = rng.randrange(1 << 20)
        return Memory(base=lambda a, s=seed: (a * 1103515245 + s) & M64)
    choices = [0, 1, 2, 3, 7, 8, 255, 256, 0xFFFF, 1 << 31, 1 << 63, M64]
    if rng.random() < 0.5:
        return rng.choice(choices)
    return rng.randrange(1 << 64)


def _eval_pattern(pattern, binding, registry):
    return Evaluator({}, registry)._eval_pattern(pattern, binding)


def _values_equal(a, b):
    if isinstance(a, Memory) and isinstance(b, Memory):
        probes = [0, 8, 16, 1 << 20, M64 & ~7]
        return all(a.select(p) == b.select(p) for p in probes)
    return a == b


def _all_builtin_axioms():
    reg = default_registry()
    corpus = []
    for axset in (math_axioms(reg), constant_synthesis_axioms(reg), alpha_axioms(reg)):
        corpus.extend(list(axset))
    checksum_reg = default_registry()
    checksum_reg, chk = checksum_axioms(checksum_reg)
    corpus.extend([(ax, checksum_reg) for ax in chk])
    return [
        (ax, reg) if not isinstance(ax, tuple) else ax for ax in corpus
    ]


@pytest.mark.parametrize(
    "axiom,registry",
    _all_builtin_axioms(),
    ids=lambda ar: getattr(ar, "name", "")[:60] if not isinstance(ar, tuple) else "",
)
def test_builtin_axiom_is_sound(axiom, registry):
    """Every built-in axiom holds on 60 random valuations."""
    rng = random.Random(hash(axiom.name) & 0xFFFF)
    sorts = _infer_var_sorts(axiom, registry)
    defs = {}
    if isinstance(axiom, AxiomEquality) and (
        registry.get(axiom.lhs.op).eval_fn is None
        if not axiom.lhs.is_var and not axiom.lhs.is_const
        else False
    ):
        pytest.skip("defines an uninterpreted operator")
    # Program-local ops (checksum) need their definitions to evaluate.
    chk_reg = registry
    if "carry" in registry:
        _, chk = checksum_axioms(default_registry())
        defs = chk.definitions()

    for _ in range(60):
        binding = {v: _random_value(s, rng) for v, s in sorts.items()}
        ev = Evaluator({}, chk_reg, defs)
        try:
            if isinstance(axiom, AxiomEquality):
                lhs = ev._eval_pattern(axiom.lhs, binding)
                rhs = ev._eval_pattern(axiom.rhs, binding)
                assert _values_equal(lhs, rhs), (
                    axiom.pretty(),
                    binding,
                    lhs,
                    rhs,
                )
            elif isinstance(axiom, AxiomDistinction):
                lhs = ev._eval_pattern(axiom.lhs, binding)
                rhs = ev._eval_pattern(axiom.rhs, binding)
                assert not _values_equal(lhs, rhs), (axiom.pretty(), binding)
            else:
                ok = False
                for kind, l, r in axiom.literals:
                    lv = ev._eval_pattern(l, binding)
                    rv = ev._eval_pattern(r, binding)
                    if (kind == "eq") == _values_equal(lv, rv):
                        ok = True
                        break
                assert ok, (axiom.pretty(), binding)
        except Exception as exc:
            if exc.__class__.__name__ == "EvalError":
                pytest.skip("axiom over uninterpreted operator")
            raise
