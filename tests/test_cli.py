"""Tests for the command-line driver."""

import os

import pytest

from repro.cli import main

SIMPLE = r"""
(\procdecl scale ((a long)) long
  (:= (\res (+ (* a 4) 1))))
"""

MISS = r"""
(\procdecl f ((p (\ref long))) long
  (:= (\res (+ (\miss (\deref p)) 1))))
"""

BAD_SYNTAX = r"(\procdecl f ((a long)) long"

LOOPY = r"""
(\procdecl count ((i long) (n long)) long
  (\semi
    (\do (-> (< i n) (:= (i (+ i 1)))))
    (:= (\res i))))
"""


@pytest.fixture
def source_file(tmp_path):
    def write(text, name="prog.dn"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestCli:
    def test_compiles_simple_program(self, source_file, capsys):
        status = main([source_file(SIMPLE)])
        out = capsys.readouterr().out
        assert status == 0
        assert "s4addq" in out
        assert "verified=True" in out

    def test_quiet_mode(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--quiet"])
        out = capsys.readouterr().out
        assert status == 0
        assert "s4addq" in out
        assert "===" not in out

    def test_retarget_itanium(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--arch", "itanium"])
        out = capsys.readouterr().out
        assert status == 0
        assert "shladd4" in out

    def test_single_issue_arch(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--arch", "simple"])
        assert status == 0
        assert "P0" in capsys.readouterr().out

    def test_loop_program_emits_two_gmas(self, source_file, capsys):
        status = main([source_file(LOOPY), "--strategy", "linear"])
        out = capsys.readouterr().out
        assert status == 0
        assert "count_loop0" in out
        assert "count_tail" in out

    def test_proc_selector(self, source_file, capsys):
        two = SIMPLE + r"(\procdecl other ((b long)) long (:= (\res b)))"
        status = main([source_file(two), "--proc", "scale"])
        out = capsys.readouterr().out
        assert status == 0
        assert "scale_tail" in out
        assert "other" not in out

    def test_unknown_proc_errors(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--proc", "nope"])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        status = main(["/nonexistent/prog.dn"])
        assert status == 2

    def test_parse_error_reported(self, source_file, capsys):
        status = main([source_file(BAD_SYNTAX)])
        assert status == 2
        assert "parse error" in capsys.readouterr().err

    def test_budget_too_small_reports_floor(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--max-cycles", "1",
                       "--min-cycles", "1", "--max-rounds", "1",
                       "--max-enodes", "50", "--no-verify"])
        # With saturation crippled the one-instruction form may be missed,
        # but whatever happens the driver must not crash.
        assert status in (0, 1)

    def test_miss_annotation_respected(self, source_file, capsys):
        status = main(
            [source_file(MISS), "--miss-latency", "9", "--max-cycles", "12"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "10 cycles" in out  # ld (9) + add (1)

    def test_dimacs_dump(self, source_file, tmp_path, capsys):
        out_dir = str(tmp_path / "cnf")
        status = main([source_file(SIMPLE), "--dimacs", out_dir])
        assert status == 0
        files = os.listdir(out_dir)
        assert files
        text = open(os.path.join(out_dir, files[0])).read()
        assert text.startswith("c Denali probe")
        assert "p cnf" in text

    def test_dimacs_roundtrips_through_solver(self, source_file, tmp_path, capsys):
        """The dumped CNF is solvable by any DIMACS solver — demonstrated
        with our own, as the paper swapped CHAFF in and out."""
        from repro.sat import CdclSolver, from_dimacs

        out_dir = str(tmp_path / "cnf")
        main([source_file(SIMPLE), "--dimacs", out_dir])
        for name in os.listdir(out_dir):
            cnf = from_dimacs(open(os.path.join(out_dir, name)).read())
            result = CdclSolver().solve(cnf)
            assert result.satisfiable is not None


class TestWholeProcedure:
    def test_whole_flag_emits_stitched_program(self, source_file, capsys):
        status = main([source_file(LOOPY), "--whole"])
        out = capsys.readouterr().out
        assert status == 0
        assert "count_loop0:" in out
        assert "beq" in out
        assert "br count_loop0" in out
        assert ".end count" in out
        assert "all GMAs verified: True" in out

    def test_whole_straight_line(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--whole", "--quiet"])
        out = capsys.readouterr().out
        assert status == 0
        assert "s4addq" in out
        assert "ret" in out


class TestListAxioms:
    def test_lists_corpus(self, capsys):
        status = main(["--list-axioms"])
        out = capsys.readouterr().out
        assert status == 0
        assert "mathematical axioms" in out
        assert "Alpha architectural axioms" in out
        assert "(forall" in out

    def test_source_required_otherwise(self, capsys):
        status = main([])
        assert status == 2
        assert "source file is required" in capsys.readouterr().err


class TestExitCodes:
    def test_version_flag(self, capsys):
        from repro import __version__

        status = main(["--version"])
        assert status == 0
        assert "repro %s" % __version__ in capsys.readouterr().out

    def test_version_flag_on_verbs(self, capsys):
        assert main(["serve", "--version"]) == 0
        assert main(["batch", "--version"]) == 0

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "superoptimizing" in capsys.readouterr().out

    def test_unknown_flag_is_usage_error(self, capsys):
        status = main(["--no-such-flag"])
        assert status == 2

    def test_keyboard_interrupt_exits_130(self, source_file, capsys,
                                          monkeypatch):
        import repro.cli as cli

        def boom(_source):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "parse_program", boom)
        status = main([source_file(SIMPLE)])
        assert status == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err


class TestStatsJson:
    def test_report_schema(self, source_file, tmp_path, capsys):
        import json

        path = str(tmp_path / "stats.json")
        status = main([source_file(SIMPLE), "--quiet", "--stats-json", path])
        assert status == 0
        report = json.load(open(path))
        assert report["arch"] == "ev6"
        assert report["strategy"] == "binary"
        assert report["gmas"], "one record per compiled GMA"
        gma = report["gmas"][0]
        assert {"label", "timings", "probes", "cache"} <= set(gma)
        totals = report["totals"]
        assert totals["sessions"] == len(report["gmas"])
        assert totals["probes"] >= 1
        assert "saturation" in totals["timings"]
        assert {"saturation", "axiom_corpus"} <= set(report["global_caches"])

    def test_saturation_block_reports_matcher_counters(
        self, source_file, tmp_path, capsys
    ):
        import json

        path = str(tmp_path / "stats.json")
        status = main([source_file(SIMPLE), "--quiet", "--stats-json", path])
        assert status == 0
        report = json.load(open(path))
        sat = report["gmas"][0]["saturation"]
        assert sat["incremental"] is True
        assert {"matches_attempted", "matches_found", "matches_pruned",
                "budget_hits", "per_axiom", "phase_seconds"} <= set(sat)
        totals = report["totals"]["saturation"]
        assert totals["sessions"] == len(report["gmas"])
        assert "budget_hits" in totals

    def test_no_incremental_match_flag(self, source_file, tmp_path, capsys):
        import json

        path = str(tmp_path / "stats.json")
        status = main([source_file(SIMPLE), "--quiet",
                       "--no-incremental-match", "--stats-json", path])
        out = capsys.readouterr().out
        assert status == 0
        assert "s4addq" in out  # the naive path emits the same optimum
        report = json.load(open(path))
        assert report["gmas"][0]["saturation"]["incremental"] is False

    def test_unwritable_path_fails(self, source_file, capsys):
        status = main([source_file(SIMPLE), "--quiet",
                       "--stats-json", "/nonexistent/dir/stats.json"])
        assert status == 1
        assert "error writing" in capsys.readouterr().err


class TestServiceVerbs:
    def test_batch_local_round_trip(self, source_file, capsys):
        status = main(["batch", source_file(SIMPLE), "--workers", "1",
                       "--strategy", "linear", "--max-cycles", "10"])
        captured = capsys.readouterr()
        assert status == 0
        assert "s4addq" in captured.out
        assert "batch:" in captured.err  # throughput summary line

    def test_batch_repeat_coalesces(self, source_file, capsys, tmp_path):
        import json

        metrics_path = str(tmp_path / "metrics.json")
        status = main(["batch", source_file(SIMPLE), "--workers", "1",
                       "--strategy", "linear", "--max-cycles", "10",
                       "--repeat", "3", "--quiet",
                       "--metrics-json", metrics_path])
        assert status == 0
        metrics = json.load(open(metrics_path))
        assert metrics["jobs"]["coalesced"] == 2
        assert metrics["throughput"]["done"] == 1

    def test_batch_missing_file_is_usage_error(self, capsys):
        status = main(["batch", "/nonexistent/prog.dn"])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_batch_parse_error_fails(self, source_file, capsys):
        status = main(["batch", source_file(BAD_SYNTAX), "--workers", "1"])
        assert status == 1

    def test_batch_against_running_server(self, source_file, capsys):
        from repro.service import CompilationEngine, ServiceServer

        engine = CompilationEngine(workers=1)
        server = ServiceServer(engine, port=0)
        server.start()
        try:
            status = main(["batch", source_file(SIMPLE), "--quiet",
                           "--strategy", "linear", "--max-cycles", "10",
                           "--url", server.url])
            out = capsys.readouterr().out
            assert status == 0
            assert "s4addq" in out
        finally:
            server.stop(drain=False)

    def test_batch_unreachable_server_fails(self, source_file, capsys):
        status = main(["batch", source_file(SIMPLE),
                       "--url", "http://127.0.0.1:9"])
        assert status == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_subprocess_round_trip(self, source_file, tmp_path):
        """`repro serve` on an ephemeral port answers a compile and shuts
        down cleanly on /v1/shutdown."""
        import re
        import subprocess
        import sys

        from repro.service import JobSpec, ServiceClient

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1",
             "--store", str(tmp_path / "store.sqlite")],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"http://[\d.]+:\d+", banner)
            assert match, banner
            client = ServiceClient(match.group(0), timeout=30.0)
            assert client.health() is True
            source = open(source_file(SIMPLE)).read()
            ids = client.submit([JobSpec(
                kind="compile", source=source, name="prog.dn",
                strategy="linear", max_cycles=10,
            )])
            wrapper = client.result(ids[0], timeout=60)
            assert "s4addq" in wrapper["result"]["units"][0]["assembly"]
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
