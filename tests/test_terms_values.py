"""Unit and property tests for the 64-bit Alpha reference semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.terms import values as V

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestConversions:
    def test_to_unsigned_wraps(self):
        assert V.to_unsigned(-1) == V.M64

    def test_to_signed_negative(self):
        assert V.to_signed(V.M64) == -1

    def test_to_signed_positive(self):
        assert V.to_signed(5) == 5

    @given(u64)
    def test_signed_unsigned_roundtrip(self, x):
        assert V.to_unsigned(V.to_signed(x)) == x

    def test_sext_byte(self):
        assert V.sext(0x80, 8) == V.to_unsigned(-128)
        assert V.sext(0x7F, 8) == 0x7F


class TestArithmetic:
    @given(u64, u64)
    def test_add64_matches_python(self, a, b):
        assert V.add64(a, b) == (a + b) % (1 << 64)

    @given(u64, u64)
    def test_sub64_inverse_of_add(self, a, b):
        assert V.sub64(V.add64(a, b), b) == a

    @given(u64)
    def test_neg64_is_sub_from_zero(self, a):
        assert V.neg64(a) == V.sub64(0, a)

    @given(u64, u64)
    def test_umulh_is_high_bits(self, a, b):
        assert (V.umulh(a, b) << 64) + V.mul64(a, b) == a * b

    def test_addl_sign_extends(self):
        assert V.addl(0x7FFFFFFF, 1) == V.to_unsigned(-(1 << 31))

    def test_addl_small(self):
        assert V.addl(2, 3) == 5

    @given(u64, u64)
    def test_s4addq_definition(self, a, b):
        assert V.s4addq(a, b) == V.add64(V.mul64(4, a), b)

    @given(u64, u64)
    def test_s8addq_definition(self, a, b):
        assert V.s8addq(a, b) == V.add64(V.mul64(8, a), b)

    @given(u64, u64)
    def test_s4subq_definition(self, a, b):
        assert V.s4subq(a, b) == V.sub64(V.mul64(4, a), b)


class TestLogic:
    @given(u64, u64)
    def test_bic_definition(self, a, b):
        assert V.bic(a, b) == a & V.not64(b)

    @given(u64, u64)
    def test_ornot_definition(self, a, b):
        assert V.ornot(a, b) == V.bis(a, V.not64(b))

    @given(u64, u64)
    def test_eqv_definition(self, a, b):
        assert V.eqv(a, b) == V.not64(V.xor64(a, b))

    @given(u64)
    def test_not_involution(self, a):
        assert V.not64(V.not64(a)) == a

    @given(u64, u64)
    def test_demorgan(self, a, b):
        assert V.not64(V.and64(a, b)) == V.bis(V.not64(a), V.not64(b))


class TestShifts:
    @given(u64, st.integers(min_value=0, max_value=63))
    def test_sll_matches_python(self, a, n):
        assert V.sll(a, n) == (a << n) % (1 << 64)

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_srl_matches_python(self, a, n):
        assert V.srl(a, n) == a >> n

    @given(u64, u64)
    def test_shift_count_uses_low_six_bits(self, a, n):
        assert V.sll(a, n) == V.sll(a, n & 63)
        assert V.srl(a, n) == V.srl(a, n & 63)
        assert V.sra(a, n) == V.sra(a, n & 63)

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_sra_sign_fills(self, a, n):
        assert V.sra(a, n) == V.to_unsigned(V.to_signed(a) >> n)

    def test_sra_negative_example(self):
        assert V.sra(V.to_unsigned(-8), 1) == V.to_unsigned(-4)


class TestComparisons:
    @given(u64, u64)
    def test_cmpult_unsigned(self, a, b):
        assert V.cmpult(a, b) == int(a < b)

    @given(u64, u64)
    def test_cmplt_signed(self, a, b):
        assert V.cmplt(a, b) == int(V.to_signed(a) < V.to_signed(b))

    def test_cmplt_vs_cmpult_disagree(self):
        minus_one = V.to_unsigned(-1)
        assert V.cmplt(minus_one, 0) == 1
        assert V.cmpult(minus_one, 0) == 0

    @given(u64, u64)
    def test_cmpule_from_cmpult_and_cmpeq(self, a, b):
        assert V.cmpule(a, b) == (V.cmpult(a, b) | V.cmpeq(a, b))


class TestCmov:
    @given(u64, u64, u64)
    def test_cmoveq_cmovne_complementary(self, t, a, b):
        assert V.cmoveq(t, a, b) == V.cmovne(t, b, a)

    def test_cmovlbs_low_bit(self):
        assert V.cmovlbs(3, 10, 20) == 10
        assert V.cmovlbs(2, 10, 20) == 20


class TestByteOps:
    @given(u64, st.integers(min_value=0, max_value=7))
    def test_extbl_picks_byte(self, w, i):
        assert V.extbl(w, i) == (w >> (8 * i)) & 0xFF

    @given(u64, st.integers(min_value=0, max_value=7))
    def test_insbl_then_extbl_roundtrip(self, w, i):
        assert V.extbl(V.insbl(w, i), i) == w & 0xFF

    @given(u64, st.integers(min_value=0, max_value=7))
    def test_mskbl_clears_byte(self, w, i):
        assert V.extbl(V.mskbl(w, i), i) == 0

    @given(u64, st.integers(min_value=0, max_value=7), u64)
    def test_storeb_selectb_roundtrip(self, w, i, x):
        assert V.selectb(V.storeb(w, i, x), i) == x & 0xFF

    @given(u64, st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7), u64)
    def test_storeb_preserves_other_bytes(self, w, i, j, x):
        if i != j:
            assert V.selectb(V.storeb(w, i, x), j) == V.selectb(w, j)

    def test_byte_index_wraps_mod_8(self):
        w = 0x0102030405060708
        assert V.extbl(w, 9) == V.extbl(w, 1)

    @given(u64)
    def test_extwl_zero_is_low_word(self, w):
        assert V.extwl(w, 0) == w & 0xFFFF

    @given(u64, st.integers(min_value=0, max_value=255))
    def test_zap_zapnot_partition(self, w, m):
        assert V.zap(w, m) | V.zapnot(w, m) == w
        assert V.zap(w, m) & V.zapnot(w, m) == 0

    @given(u64, st.integers(min_value=0, max_value=255))
    def test_zapnot_complement(self, w, m):
        assert V.zapnot(w, m) == V.zap(w, ~m & 0xFF)

    def test_byteswap_reference(self):
        w = 0x0000000077787970  # "wxyz" little endian-ish example
        swapped = 0
        for i in range(4):
            swapped = V.storeb(swapped, 3 - i, V.selectb(w, i))
        assert V.selectb(swapped, 0) == V.selectb(w, 3)
        assert V.selectb(swapped, 3) == V.selectb(w, 0)

    @given(u64, st.integers(min_value=0, max_value=3))
    def test_selectw_picks_field(self, w, i):
        assert V.selectw(w, i) == (w >> (16 * i)) & 0xFFFF


class TestSext:
    def test_sextb(self):
        assert V.sextb(0xFF) == V.M64

    def test_sextw(self):
        assert V.sextw(0x8000) == V.to_unsigned(-0x8000)

    @given(u64)
    def test_sextl_idempotent(self, a):
        assert V.sextl(V.sextl(a)) == V.sextl(a)


class TestMemory:
    def test_select_default_zero(self):
        m = V.Memory()
        assert m.select(0x1000) == 0

    def test_store_is_persistent(self):
        m0 = V.Memory()
        m1 = m0.store(8, 42)
        assert m0.select(8) == 0
        assert m1.select(8) == 42

    def test_store_overwrites(self):
        m = V.Memory().store(8, 1).store(8, 2)
        assert m.select(8) == 2

    def test_base_function(self):
        m = V.Memory(base=lambda a: a * 2)
        assert m.select(21) == 42

    def test_store_masks_value(self):
        m = V.Memory().store(0, -1)
        assert m.select(0) == V.M64

    @given(u64, u64, u64, u64)
    def test_select_store_axiom(self, p, q, x, base):
        m = V.Memory().store(base, 7)
        m2 = m.store(p, x)
        if p != q:
            assert m2.select(q) == m.select(q)
        assert m2.select(p) == x

    def test_equal_on(self):
        m1 = V.Memory().store(0, 1).store(8, 2)
        m2 = V.Memory().store(8, 2).store(0, 1)
        assert m1.equal_on(m2, [0, 8, 16])


class TestPow:
    def test_pow_small(self):
        assert V.pow_(2, 2) == 4

    def test_pow_wraps(self):
        assert V.pow_(2, 64) == 0

    @given(st.integers(min_value=0, max_value=63))
    def test_pow2_is_shift(self, n):
        assert V.pow_(2, n) == 1 << n
