"""Tests for the cross-path oracle layer and the case minimiser."""

import pytest

from repro.fuzz import (
    OracleOptions,
    check_case,
    generate_case,
    shrink_case,
)
from repro.fuzz.oracles import (
    ALL_ORACLES,
    ORACLE_ASM,
    ORACLE_CRASH,
    ORACLE_SOLVER,
    ORACLE_STRATEGY,
)
from repro.terms.evaluator import Evaluator

# Fast seeds with broad feature coverage (straight-line, var, cmov,
# memory, loop); the full sweep lives in the fuzz-smoke CI job.
FAST_SEEDS = (0, 3, 9, 11, 12, 29)


class TestCheckCase:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_generated_cases_pass_every_oracle(self, seed):
        report = check_case(generate_case(seed))
        assert report.passed, report.divergences
        assert report.gmas >= 1
        assert report.compiled == report.gmas
        # Every enabled oracle with an eligible GMA actually compared.
        assert report.checks.get(ORACLE_ASM) == report.compiled
        assert report.checks.get(ORACLE_SOLVER) == report.compiled
        assert report.checks.get(ORACLE_STRATEGY) == 2 * report.compiled

    def test_accepts_raw_source(self):
        report = check_case(
            "(\\procdecl t ((a long)) long (:= (res (+ a 1))))"
        )
        assert report.passed
        assert report.gmas == 1

    def test_front_end_rejection_is_a_crash_divergence(self):
        report = check_case("(\\procdecl broken ((a long)) long")
        assert not report.passed
        assert report.failing_oracles() == (ORACLE_CRASH,)

    def test_narrowed_options_run_one_oracle(self):
        options = OracleOptions().narrowed_to(ORACLE_ASM)
        assert options.oracles == (ORACLE_ASM,)
        report = check_case(generate_case(11), options)
        assert report.passed
        assert set(report.checks) <= {ORACLE_ASM}

    def test_all_oracles_constant(self):
        assert set(ALL_ORACLES) == {
            "asm-vs-eval", "solver-paths", "extraction", "strategies",
            "matching", "bruteforce", "stochastic", "cross-target",
        }


class TestShrinker:
    def test_shrinks_toward_predicate_core(self):
        """A synthetic predicate: keep any program that still derefs."""
        case = generate_case(179)  # loop + store + var + deref
        assert "\\deref" in case.source

        def still_fails(candidate):
            return "\\deref" in candidate.source

        shrunk = shrink_case(case, still_fails)
        assert "\\deref" in shrunk.source
        assert len(shrunk.source) < len(case.source)

    def test_returns_original_when_nothing_shrinks(self):
        case = generate_case(11)

        def never(candidate):
            return False

        assert shrink_case(case, never).source == case.source

    def test_shrunk_case_still_parses(self):
        from repro.lang import parse_program, translate_procedure

        case = generate_case(223)

        def still_fails(candidate):
            # Any candidate that survives the front end is "failing":
            # drives the shrinker to the smallest translatable program.
            try:
                program = parse_program(candidate.source)
                for proc in program.procedures:
                    translate_procedure(proc, program.registry)
                return True
            except Exception:
                return False

        shrunk = shrink_case(case, still_fails)
        program = parse_program(shrunk.source)
        assert program.procedures
        assert len(shrunk.source_lines()) <= len(case.source_lines())


class TestInjectedBug:
    """The harness's own mutation check, run live.

    An evaluator-only bug (the simulator and the brute-force baseline
    call the registry's ``eval_fn`` directly, so they stay correct) must
    be caught by the asm-vs-eval oracle and auto-minimised to a
    handful of lines.
    """

    def test_evaluator_bug_is_caught_and_minimised(self, monkeypatch):
        real = Evaluator._eval_uncached

        def buggy(self, term):
            value = real(self, term)
            if not term.is_const and not term.is_input and term.op == "xor64":
                value = value ^ 1
            return value

        monkeypatch.setattr(Evaluator, "_eval_uncached", buggy)

        case = generate_case(27)  # tail computes an xor
        assert "(^ " in case.source
        report = check_case(case)
        assert not report.passed
        assert ORACLE_ASM in report.failing_oracles()

        narrowed = OracleOptions().narrowed_to(ORACLE_ASM)

        def still_fails(candidate):
            return ORACLE_ASM in check_case(
                candidate, narrowed
            ).failing_oracles()

        shrunk = shrink_case(case, still_fails)
        assert ORACLE_ASM in check_case(shrunk, narrowed).failing_oracles()
        assert len(shrunk.source_lines()) <= 5
        assert "^" in shrunk.source  # the minimiser kept the culprit

    def test_clean_evaluator_passes_the_same_case(self):
        report = check_case(generate_case(27))
        assert report.passed, report.divergences
