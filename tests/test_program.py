"""Whole-procedure assembly and execution tests.

The strongest end-to-end checks in the suite: complete procedures (loops,
guards, exits) are compiled to full assembly programs and *run* on the
program-level simulator against the reference semantics — including the
paper's checksum.
"""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    Memory,
    SearchStrategy,
    ev6,
    itanium_like,
    parse_program,
)
from repro.core.program import (
    BranchIfZero,
    Jump,
    Label,
    ProgramError,
    Ret,
    execute_program,
)
from repro.matching import SaturationConfig
from repro.terms.values import M64


def _denali(prog, spec=None, max_cycles=12):
    cfg = DenaliConfig(
        min_cycles=1,
        max_cycles=max_cycles,
        strategy=SearchStrategy.BINARY,
        saturation=SaturationConfig(max_rounds=8, max_enodes=2000),
    )
    return Denali(spec or ev6(), registry=prog.registry, config=cfg)


SUM_SRC = r"""
(\procdecl sumloop ((ptr (\ref long)) (end (\ref long))) long
  (\var (s long 0)
  (\semi
    (\do (-> (< ptr end)
      (\semi (:= (s (+ s (\deref ptr)))) (:= (ptr (+ ptr 8))))))
    (:= (\res s)))))
"""

COUNT_SRC = r"""
(\procdecl count ((i long) (n long)) long
  (\semi
    (\do (-> (< i n) (:= (i (+ i 1)))))
    (:= (\res (* i 2)))))
"""

STRAIGHT_SRC = r"""
(\procdecl scale ((a long)) long
  (:= (\res (+ (* a 4) 1))))
"""


def _mem(values, base=1000):
    mem = Memory()
    for i, v in enumerate(values):
        mem = mem.store(base + 8 * i, v)
    return mem


class TestAssembly:
    def test_loop_block_structure(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        kinds = [type(e).__name__ for e in pr.program.entries]
        assert kinds[0] == "Label"
        assert "BranchIfZero" in kinds
        assert "Jump" in kinds
        assert kinds[-1] == "Ret"

    def test_branch_follows_guard(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        entries = pr.program.entries
        branch_idx = next(
            i for i, e in enumerate(entries) if isinstance(e, BranchIfZero)
        )
        # Everything before the branch must be guard computation, never a
        # memory access (section 7's unsafe-expression ordering).
        for e in entries[:branch_idx]:
            if hasattr(e, "mnemonic"):
                assert e.mnemonic not in ("ldq", "stq")

    def test_moves_commit_before_backedge(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        entries = pr.program.entries
        jump_idx = next(
            i for i, e in enumerate(entries) if isinstance(e, Jump)
        )
        movs = [
            i
            for i, e in enumerate(entries)
            if hasattr(e, "mnemonic") and e.mnemonic == "mov"
        ]
        assert movs and all(i < jump_idx for i in movs)

    def test_render_contains_structure(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        text = pr.assembly
        assert "sumloop_loop0:" in text
        assert "beq" in text
        assert "br sumloop_loop0" in text
        assert text.rstrip().endswith(".end sumloop")

    def test_straight_line_has_no_branches(self):
        prog = parse_program(STRAIGHT_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("scale"))
        assert not any(
            isinstance(e, (BranchIfZero, Jump)) for e in pr.program.entries
        )


class TestExecution:
    @pytest.mark.parametrize(
        "values", [[], [42], [1, 2, 3], [10, 20, 30, 40, 50, 60]]
    )
    def test_sum_loop_all_trip_counts(self, values):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        assert pr.all_verified()
        state = execute_program(
            pr.program,
            {
                "M": _mem(values),
                "ptr": 1000,
                "end": 1000 + 8 * len(values),
                "s": 0,
            },
        )
        assert state.read(pr.program.result_register) == sum(values) % (1 << 64)

    @pytest.mark.parametrize("i,n", [(0, 0), (0, 5), (3, 10), (7, 7)])
    def test_counting_loop(self, i, n):
        prog = parse_program(COUNT_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("count"))
        state = execute_program(pr.program, {"i": i, "n": n})
        assert state.read(pr.program.result_register) == 2 * max(i, n)

    def test_straight_line_result(self):
        prog = parse_program(STRAIGHT_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("scale"))
        state = execute_program(pr.program, {"a": 10})
        assert state.read(pr.program.result_register) == 41

    def test_retargeted_procedure_executes(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog, spec=itanium_like()).compile_procedure(
            prog.procedure("sumloop")
        )
        state = execute_program(
            pr.program,
            {"M": _mem([9, 9]), "ptr": 1000, "end": 1016, "s": 0},
        )
        assert state.read(pr.program.result_register) == 18

    def test_nonterminating_guard_hits_step_limit(self):
        prog = parse_program(SUM_SRC)
        pr = _denali(prog).compile_procedure(prog.procedure("sumloop"))
        with pytest.raises(ProgramError):
            execute_program(
                pr.program,
                {"M": Memory(), "ptr": 0, "end": M64, "s": 0},
                max_steps=200,
            )


class TestChecksumProcedure:
    def test_full_checksum_executes_correctly(self):
        """The paper's flagship program, end to end: parsed from the
        Figure 6 syntax, translated, optimised per GMA, stitched with
        branches, run on the machine simulator, and compared with a
        direct Python ones-complement checksum."""
        import examples.checksum as cs

        src = cs.SOURCE_TEMPLATE.replace("UNROLL", "2")
        prog = parse_program(src)
        from repro import AxiomSet
        from repro.axioms import (
            alpha_axioms,
            constant_synthesis_axioms,
            math_axioms,
        )

        axioms = (
            math_axioms(prog.registry)
            + constant_synthesis_axioms(prog.registry)
            + alpha_axioms(prog.registry)
            + AxiomSet(prog.axioms, "local")
        )
        cfg = DenaliConfig(
            min_cycles=4,
            max_cycles=14,
            strategy=SearchStrategy.BINARY,
            saturation=SaturationConfig(max_rounds=8, max_enodes=2500),
        )
        den = Denali(ev6(), axioms=axioms, registry=prog.registry, config=cfg)
        pr = den.compile_procedure(prog.procedure("checksum"))
        assert pr.all_verified()

        def reference_checksum(words):
            s = 0
            for w in words:
                s = (s + w) % (1 << 64) + (1 if s + w >= (1 << 64) else 0)
            total = sum((s >> (16 * k)) & 0xFFFF for k in range(4))
            total = (total & 0xFFFF) + (total >> 16)
            return ((total & 0xFFFF) + (total >> 16)) & 0xFFFF

        # 4 quadwords = 2 unrolled trips of 2.
        words = [0x0123456789ABCDEF, 0xFFFF0000FFFF0000,
                 0x1111222233334444, 0xDEADBEEFCAFEF00D]
        state = execute_program(
            pr.program,
            {
                "M": _mem(words),
                "ptr": 1000,
                "ptrend": 1000 + 8 * len(words),
                "sum": 0,
                "v1": _mem(words).select(1000),
            },
        )
        got = state.read(pr.program.result_register)
        want = reference_checksum(words)
        assert got == want, (hex(got), hex(want))
