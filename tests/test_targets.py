"""The multi-target layer: registry, rv64 end-to-end, isolation, tiering.

The retargeting refactor's contract, tested from four sides:

* the :mod:`repro.isa.targets` registry resolves names, aliases and
  specs consistently;
* ``rv64`` compiles the paper's workloads to verified, deterministic
  assembly through the full pipeline (its axiom sublayer included);
* nothing leaks across targets — the axiom corpus, the job fingerprint
  and the persistent result store all key on the target;
* tiered axiom scheduling is a pure scheduling change: the saturated
  partition and the emitted bytes are identical with it on or off.
"""

import warnings

import pytest

from repro import Denali, DenaliConfig, SearchStrategy, const, inp, mk
from repro.isa import (
    ev6,
    get_target,
    resolve_spec,
    rv64,
    target_for_spec,
    target_names,
)
from repro.matching import SaturationConfig


def _config(**kwargs):
    defaults = dict(
        min_cycles=1,
        max_cycles=8,
        strategy=SearchStrategy.BINARY,
        saturation=SaturationConfig(max_rounds=10, max_enodes=2500),
    )
    defaults.update(kwargs)
    return DenaliConfig(**defaults)


FIG2 = mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))


# -- the registry --------------------------------------------------------------


class TestRegistry:
    def test_canonical_names(self):
        names = target_names()
        assert names[0] == "ev6"  # the default stays first
        assert "rv64" in names

    def test_aliases_resolve(self):
        assert get_target("alpha").name == "ev6"
        assert get_target("riscv").name == "rv64"
        assert get_target("alpha-ev6") is get_target("ev6")

    def test_unknown_target_lists_known(self):
        with pytest.raises(KeyError, match="rv64"):
            get_target("z80")

    def test_resolve_spec_forwards_load_latency(self):
        assert resolve_spec("ev6", load_latency=5).latency("select") == 5
        # Targets without a cache model just ignore the knob.
        assert resolve_spec("simple", load_latency=5) is not None

    def test_target_for_spec_round_trips(self):
        assert target_for_spec(ev6()) == "ev6"
        assert target_for_spec(rv64()) == "rv64"

    def test_target_for_spec_adhoc_falls_back_to_spec_name(self):
        import dataclasses

        spec = dataclasses.replace(ev6(), name="bespoke-test-machine")
        assert target_for_spec(spec) == "bespoke-test-machine"


# -- rv64 end to end -----------------------------------------------------------


class TestRV64Pipeline:
    def test_fig2_single_instruction(self):
        res = Denali(rv64(), config=_config()).compile_term(FIG2)
        assert res.cycles == 1
        assert res.optimal
        assert res.verified
        assert res.schedule.instructions[0].mnemonic == "sh2add"

    def test_byte_extract_without_byte_ops(self):
        # extbl is not an rv64 machine op; the sublayer lowers it.
        res = Denali(rv64(), config=_config()).compile_term(
            mk("extbl", inp("w"), const(1))
        )
        assert res.schedule is not None
        assert res.verified
        ops = {i.node.op for i in res.schedule.instructions}
        assert "extbl" not in ops

    def test_byte_surgery_without_byte_ops(self):
        # inswl/mskbl/mskwl/irregular zapnot have no rv64 machine op;
        # the sublayer's shift-and-mask lowerings must reach machine
        # code (seed-0 campaign regression: EncodeError on inswl).
        goals = (
            mk("inswl", inp("w"), const(4)),
            mk("mskbl", inp("w"), const(3)),
            mk("mskwl", inp("w"), const(5)),
            mk("zapnot", inp("w"), const(85)),
        )
        for goal in goals:
            res = Denali(rv64(), config=_config()).compile_term(goal)
            assert res.schedule is not None, goal
            assert res.verified, goal

    def test_checksum_style_goal(self):
        goal = mk(
            "add64",
            mk("and64", inp("a"), const(255)),
            mk("srl", inp("a"), const(8)),
        )
        res = Denali(rv64(), config=_config()).compile_term(goal)
        assert res.schedule is not None
        assert res.verified

    def test_cmov_lowering(self):
        # rv64 has no conditional moves; the sublayer rewrites them.
        res = Denali(rv64(), config=_config()).compile_term(
            mk("cmoveq", inp("p"), inp("a"), inp("b"))
        )
        assert res.schedule is not None
        assert res.verified
        ops = {i.node.op for i in res.schedule.instructions}
        assert "cmoveq" not in ops

    def test_deterministic_across_strategies(self):
        goal = mk("mul64", mk("add64", inp("a"), const(3)), const(8))
        outputs = []
        for strategy in (
            SearchStrategy.BINARY,
            SearchStrategy.LINEAR,
            SearchStrategy.PORTFOLIO,
        ):
            res = Denali(
                rv64(), config=_config(strategy=strategy)
            ).compile_term(goal)
            assert res.schedule is not None
            outputs.append((res.cycles, res.schedule.render()))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_deterministic_across_fresh_pipelines(self):
        first = Denali(rv64(), config=_config()).compile_term(FIG2)
        second = Denali(rv64(), config=_config()).compile_term(FIG2)
        assert first.schedule.render() == second.schedule.render()

    def test_rv64_mnemonics_in_rendering(self):
        res = Denali(rv64(), config=_config()).compile_term(
            mk("add64", inp("a"), const(3000))
        )
        text = res.schedule.render()
        assert "li" in text  # 3000 overflows the 12-bit immediate
        assert "ldiq" not in text

    def test_config_target_string_resolves_spec(self):
        den = Denali(config=_config(target="rv64"))
        assert den.spec.name == rv64().name
        assert den.target == "rv64"


# -- cross-target isolation ----------------------------------------------------


class TestCorpusIsolation:
    def test_per_target_corpora_differ(self):
        from repro.core.cache import global_axiom_cache
        from repro.terms.ops import default_registry

        registry = default_registry()
        ev6_corpus = global_axiom_cache().default_corpus(registry, "ev6")
        rv64_corpus = global_axiom_cache().default_corpus(registry, "rv64")
        ev6_names = {ax.name for ax in ev6_corpus}
        rv64_names = {ax.name for ax in rv64_corpus}
        assert ev6_names != rv64_names

        from repro.core.cache import axioms_fingerprint

        assert axioms_fingerprint(ev6_corpus) != (
            axioms_fingerprint(rv64_corpus)
        )

    def test_cached_corpora_keyed_by_target(self):
        from repro.core.cache import global_axiom_cache
        from repro.terms.ops import default_registry

        registry = default_registry()
        cache = global_axiom_cache()
        assert cache.default_corpus(registry, "ev6") is cache.default_corpus(
            registry, "ev6"
        )
        assert cache.default_corpus(registry, "ev6") is not (
            cache.default_corpus(registry, "rv64")
        )

    def test_tagged_axioms_filtered(self):
        from repro.axioms import default_axiom_corpus
        from repro.terms.ops import default_registry

        registry = default_registry()
        for name, corpus in (
            ("ev6", default_axiom_corpus(registry, "ev6")),
            ("rv64", default_axiom_corpus(registry, "rv64")),
        ):
            for axiom in corpus:
                assert not axiom.targets or name in axiom.targets, (
                    "%s corpus contains %s tagged %r"
                    % (name, axiom.name, axiom.targets)
                )


class TestStoreIsolation:
    def test_targets_get_distinct_store_entries(self, tmp_path):
        from repro.service import (
            CompilationEngine,
            JobSpec,
            ResultStore,
            job_fingerprint,
        )

        source = "(\\procdecl scale ((a long)) long" \
                 " (:= (\\res (+ (* a 4) 1))))"

        def spec(arch):
            return JobSpec(
                kind="compile", source=source, name="scale.dn", arch=arch,
                strategy="linear", max_cycles=8, max_rounds=8,
                max_enodes=2500,
            )

        assert job_fingerprint(spec("ev6")) != job_fingerprint(spec("rv64"))

        path = str(tmp_path / "store.sqlite")
        first_pass = {}
        engine = CompilationEngine(workers=1, store=ResultStore(path))
        try:
            for arch in ("ev6", "rv64"):
                payload = engine.result(engine.submit(spec(arch)), timeout=120)
                assert payload["ok"], payload
                assert payload["target"] == arch
                first_pass[arch] = payload["units"][0]["assembly"]
        finally:
            engine.shutdown(drain=False)
        assert first_pass["ev6"] != first_pass["rv64"]

        # A fresh engine over the same sqlite file serves both entries
        # from the store, byte-identical.
        rerun = CompilationEngine(workers=1, store=ResultStore(path))
        try:
            for arch in ("ev6", "rv64"):
                job_id = rerun.submit(spec(arch))
                assert rerun.status(job_id)["from_store"] is True
                payload = rerun.result(job_id, timeout=10)
                assert payload["units"][0]["assembly"] == first_pass[arch]
        finally:
            rerun.shutdown(drain=False)

    def test_corpus_keys_are_per_target(self):
        from repro.service import default_corpus_key

        assert default_corpus_key("ev6") != default_corpus_key("rv64")

    def test_axiom_tiers_changes_fingerprint(self):
        from repro.service import JobSpec, job_fingerprint

        a = JobSpec(kind="compile", source="x")
        b = JobSpec(kind="compile", source="x", axiom_tiers=True)
        assert job_fingerprint(a) != job_fingerprint(b)


# -- the cross-target oracle ---------------------------------------------------


class TestCrossTargetOracle:
    def test_clean_on_a_simple_program(self):
        from repro.fuzz import OracleOptions, check_case
        from repro.fuzz.oracles import ORACLE_CROSS

        source = "(\\procdecl scale ((a long)) long" \
                 " (:= (\\res (+ (* a 4) 1))))"
        report = check_case(
            source,
            OracleOptions(oracles=(ORACLE_CROSS,), max_cycles=8),
        )
        assert report.passed, [d.detail for d in report.divergences]
        assert report.checks.get(ORACLE_CROSS, 0) >= 1

    def test_narrowing_preserves_target_fields(self):
        from repro.fuzz import OracleOptions
        from repro.fuzz.oracles import ORACLE_ASM

        options = OracleOptions(target="rv64", cross_targets=("rv64",))
        narrowed = options.narrowed_to(ORACLE_ASM)
        assert narrowed.target == "rv64"
        assert narrowed.cross_targets == ("rv64",)


# -- tiered axiom scheduling ---------------------------------------------------


class TestAxiomTiers:
    GOALS = (
        FIG2,
        mk("and64", mk("bis", inp("a"), inp("b")), const(255)),
        mk("extbl", inp("w"), const(2)),
        mk("sub64", mk("sll", inp("a"), const(3)), inp("a")),
    )

    def test_same_fixpoint_and_bytes(self):
        from repro.egraph.analysis import partition_signature

        for goal in self.GOALS:
            plain = Denali(ev6(), config=_config()).compile_term(goal)
            tiered = Denali(
                ev6(),
                config=_config(
                    saturation=SaturationConfig(
                        max_rounds=10, max_enodes=2500, axiom_tiers=True
                    )
                ),
            ).compile_term(goal)
            assert partition_signature(plain.egraph) == (
                partition_signature(tiered.egraph)
            )
            assert plain.egraph.num_enodes() == tiered.egraph.num_enodes()
            assert (plain.cycles, plain.schedule.render()) == (
                tiered.cycles, tiered.schedule.render()
            )

    def test_tier_classifier(self):
        from repro.matching.saturation import axiom_tier
        from repro.terms.ops import default_registry
        from repro.axioms import default_axiom_corpus

        corpus = default_axiom_corpus(default_registry(), "ev6")
        tiers = {axiom_tier(ax) for ax in corpus}
        assert tiers == {"cheap", "expansive"}  # both tiers are populated

    def test_stats_record_activation(self):
        den = Denali(
            ev6(),
            config=_config(
                saturation=SaturationConfig(
                    max_rounds=10, max_enodes=2500, axiom_tiers=True
                )
            ),
        )
        res = den.compile_term(FIG2)
        assert res.saturation.tiered is True
        assert res.saturation.tier_activation_round >= 1


# -- the emit rename shim ------------------------------------------------------


class TestEmitShim:
    def test_legacy_import_warns_and_aliases(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.extraction", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = importlib.import_module("repro.core.extraction")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        import repro.core.emit as emit

        assert legacy.extract_schedule is emit.extract_schedule
        assert legacy.Schedule is emit.Schedule
        assert legacy.ScheduledInstruction is emit.ScheduledInstruction
