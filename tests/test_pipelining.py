"""Tests for automatic software pipelining (the paper's future work).

The load-hoisting transformation must preserve the loop's observable
semantics (compared via the reference loop interpreter) and actually
shorten the compiled loop body by taking load latency off the critical
path — the effect the paper hand-achieved in Figure 6.
"""

import pytest

from repro import (
    Denali,
    DenaliConfig,
    GMA,
    Memory,
    SearchStrategy,
    Sort,
    const,
    ev6,
    inp,
    mk,
)
from repro.lang.pipelining import run_loop, software_pipeline
from repro.matching import SaturationConfig

pytestmark = pytest.mark.slow


def sum_loop():
    """sum := sum + *ptr; ptr := ptr + 8  while ptr < end."""
    m = inp("M", Sort.MEM)
    ptr, end, s = inp("ptr"), inp("end"), inp("sum")
    return GMA(
        ("sum", "ptr"),
        (
            mk("add64", s, mk("select", m, ptr)),
            mk("add64", ptr, const(8)),
        ),
        guard=mk("cmpult", ptr, end),
    )


def _env(values):
    mem = Memory()
    for i, v in enumerate(values):
        mem = mem.store(1000 + 8 * i, v)
    return {
        "M": mem,
        "ptr": 1000,
        "end": 1000 + 8 * len(values),
        "sum": 0,
    }


class TestTransformation:
    def test_temp_introduced_per_load(self):
        pipelined = software_pipeline(sum_loop())
        assert pipelined.temps == ["pipe0"]
        assert len(pipelined.prologue) == 1
        assert pipelined.reads_ahead

    def test_prologue_is_the_original_load(self):
        pipelined = software_pipeline(sum_loop())
        name, init = pipelined.prologue[0]
        assert init.op == "select"

    def test_body_consumes_temp_not_load(self):
        pipelined = software_pipeline(sum_loop())
        sum_val = pipelined.gma.newvals[pipelined.gma.targets.index("sum")]
        # sum := sum + pipe0 — no select on the sum path anymore
        assert all(s.op != "select" for s in _subterms(sum_val))

    def test_temp_refilled_with_advanced_load(self):
        pipelined = software_pipeline(sum_loop())
        refill = pipelined.gma.newvals[pipelined.gma.targets.index("pipe0")]
        assert refill.op == "select"
        # The address is the *next* iteration's pointer: ptr + 8.
        addr = refill.args[1]
        assert addr.op == "add64"

    def test_loop_without_loads_untouched(self):
        gma = GMA(
            ("i",),
            (mk("add64", inp("i"), const(1)),),
            guard=mk("cmpult", inp("i"), inp("n")),
        )
        pipelined = software_pipeline(gma)
        assert pipelined.gma is gma
        assert not pipelined.temps
        assert not pipelined.reads_ahead


def _subterms(t):
    from repro.terms import subterms

    return subterms(t)


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "values",
        [
            [5],
            [1, 2, 3],
            [10, 20, 30, 40, 50],
            [0xFFFFFFFFFFFFFFFF, 1],
        ],
    )
    def test_pipelined_loop_computes_same_sums(self, values):
        original = sum_loop()
        pipelined = software_pipeline(original)

        env = _env(values)
        final_orig = run_loop(original, env)

        env2 = _env(values)
        # Execute the prologue, then the pipelined loop.
        from repro.terms.evaluator import Evaluator

        for name, init in pipelined.prologue:
            env2[name] = Evaluator(env2).eval(init)
        final_pipe = run_loop(pipelined.gma, env2)

        assert final_pipe["sum"] == final_orig["sum"]
        assert final_pipe["ptr"] == final_orig["ptr"]

    def test_empty_loop_trip(self):
        original = sum_loop()
        pipelined = software_pipeline(original)
        env = _env([])
        env["end"] = env["ptr"]  # zero iterations
        final_orig = run_loop(original, dict(env))
        from repro.terms.evaluator import Evaluator

        env2 = dict(env)
        for name, init in pipelined.prologue:
            env2[name] = Evaluator(env2).eval(init)
        final_pipe = run_loop(pipelined.gma, env2)
        assert final_pipe["sum"] == final_orig["sum"] == 0


class TestPipeliningPaysOff:
    def test_pipelined_body_is_faster(self):
        """The load leaves the critical path: the compiled pipelined body
        is strictly shorter than the original body (ldq latency 3)."""
        cfg = DenaliConfig(
            min_cycles=2,
            max_cycles=10,
            strategy=SearchStrategy.LINEAR,
            saturation=SaturationConfig(max_rounds=8, max_enodes=1500),
        )
        den = Denali(ev6(), config=cfg)
        original = den.compile_gma(sum_loop())
        pipelined_loop = software_pipeline(sum_loop())
        pipelined = den.compile_gma(pipelined_loop.gma)

        assert original.verified and pipelined.verified
        assert original.optimal and pipelined.optimal
        assert pipelined.cycles < original.cycles
