"""Differential test: the SAT-found optimum vs. an exhaustive scheduler.

For small expression DAGs with no equivalence reasoning (empty axiom set),
the minimum schedule length on the single-issue machine can be computed
exactly by enumerating every topological order.  The pipeline's answer —
minimum K with a SAT probe, including its optimality proof — must match.
This pins down the whole section-6 encoding (latency linking, operand
availability, issue exclusivity, goal constraints) against ground truth.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Denali, DenaliConfig, SearchStrategy, inp, mk, simple_risc
from repro.axioms import AxiomSet
from repro.matching import SaturationConfig
from repro.terms import Term, subterms


def _machine_nodes(term: Term, spec):
    """The operations the machine must execute: non-leaf subterms."""
    return [t for t in subterms(term) if not t.is_leaf]


def brute_force_min_cycles(term: Term, spec) -> int:
    """Exhaustive optimum on a single-issue machine.

    Every schedule is a topological order of the DAG; with one launch per
    cycle (possibly idle cycles waiting for latencies), the best makespan
    over all orders is the true optimum.  Idle cycles are implicit: given
    an order, greedily launch each op at the earliest cycle after both its
    operands' completions and the previous launch.
    """
    ops = _machine_nodes(term, spec)
    deps = {
        t: [a for a in t.args if not a.is_leaf]
        for t in ops
    }

    best = [float("inf")]

    def orders(remaining, done_times, last_launch, makespan):
        if makespan >= best[0]:
            return
        if not remaining:
            best[0] = makespan
            return
        for t in list(remaining):
            if any(d not in done_times for d in deps[t]):
                continue
            ready = max((done_times[d] + 1 for d in deps[t]), default=0)
            launch = max(ready, last_launch + 1)
            completion = launch + spec.latency(t.op) - 1
            remaining.remove(t)
            done_times[t] = completion
            orders(remaining, done_times, launch, max(makespan, completion + 1))
            del done_times[t]
            remaining.add(t)

    orders(set(ops), {}, -1, 0)
    return int(best[0])


def _pipeline_min_cycles(term: Term, spec) -> int:
    config = DenaliConfig(
        min_cycles=1,
        max_cycles=20,
        strategy=SearchStrategy.BINARY,
        verify=False,
        saturation=SaturationConfig(max_rounds=1, max_enodes=500,
                                    synthesize_constants=False,
                                    synthesize_byte_masks=False,
                                    fold_constants=False),
    )
    den = Denali(spec, axioms=AxiomSet(), config=config)
    result = den.compile_term(term)
    assert result.schedule is not None
    assert result.optimal
    return result.cycles


_LEAVES = [inp("a"), inp("b"), inp("c")]
_CHEAP_OPS = ["add64", "sub64", "and64", "bis", "xor64"]


def _random_dag(data, max_ops=4):
    """A random expression DAG with shared subterms and mixed latencies."""
    pool = list(_LEAVES)
    n_ops = data.draw(st.integers(1, max_ops))
    term = None
    for _ in range(n_ops):
        use_mul = data.draw(st.integers(0, 9)) == 0
        op = "mul64" if use_mul else data.draw(st.sampled_from(_CHEAP_OPS))
        x = data.draw(st.sampled_from(pool))
        y = data.draw(st.sampled_from(pool))
        term = mk(op, x, y)
        pool.append(term)
    return term


class TestEncoderAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_optimum_matches_exhaustive_scheduler(self, data):
        spec = simple_risc()
        term = _random_dag(data)
        expected = brute_force_min_cycles(term, spec)
        found = _pipeline_min_cycles(term, spec)
        assert found == expected, term.pretty()

    def test_known_case_chain(self):
        spec = simple_risc()
        term = mk("add64", mk("add64", inp("a"), inp("b")), inp("c"))
        assert brute_force_min_cycles(term, spec) == 2
        assert _pipeline_min_cycles(term, spec) == 2

    def test_known_case_latency_hiding(self):
        # mul (7 cycles) with an independent add: launch mul first, the
        # add hides under it, combiner at cycle 7: 8 cycles total.
        spec = simple_risc()
        term = mk(
            "bis",
            mk("mul64", inp("a"), inp("b")),
            mk("add64", inp("a"), inp("c")),
        )
        assert brute_force_min_cycles(term, spec) == 8
        assert _pipeline_min_cycles(term, spec) == 8

    def test_known_case_diamond(self):
        spec = simple_risc()
        shared = mk("add64", inp("a"), inp("b"))
        term = mk("and64", mk("bis", shared, inp("c")),
                  mk("xor64", shared, inp("a")))
        # shared(0), two mids (1,2), combiner at 3: 4 cycles.
        assert brute_force_min_cycles(term, spec) == 4
        assert _pipeline_min_cycles(term, spec) == 4
