"""Tests for the input language: lexing/parsing and translation to GMAs."""

import pytest

from repro.lang import (
    Assign,
    DoLoop,
    GMA,
    LangError,
    Semi,
    VarDecl,
    parse_program,
    translate_procedure,
)
from repro.lang.translate import TranslationError, expr_to_term, unroll_loop
from repro.terms import Memory, Sort, const, evaluate, inp, mk


class TestGMA:
    def test_targets_values_must_align(self):
        with pytest.raises(ValueError):
            GMA(("a", "b"), (inp("x"),))

    def test_targets_must_be_distinct(self):
        with pytest.raises(ValueError):
            GMA(("a", "a"), (inp("x"), inp("y")))

    def test_goal_terms_include_guard(self):
        g = GMA(("a",), (inp("b"),), guard=mk("cmpult", inp("a"), inp("n")))
        assert len(g.goal_terms()) == 2

    def test_apply_simultaneous(self):
        # (a, b) := (b, a) swaps.
        g = GMA(("a", "b"), (inp("b"), inp("a")))
        out = g.apply({"a": 1, "b": 2})
        assert out["a"] == 2 and out["b"] == 1

    def test_apply_memory(self):
        g = GMA(
            ("M",),
            (mk("store", inp("M", Sort.MEM), inp("p"), const(7)),),
        )
        out = g.apply({"M": Memory(), "p": 64})
        assert out["M"].select(64) == 7

    def test_pretty(self):
        g = GMA(("a",), (const(1),))
        assert ":=" in g.pretty()


class TestParser:
    def test_procdecl(self):
        prog = parse_program(
            r"(\procdecl f ((a long)) long (:= (\res (+ a 1))))"
        )
        proc = prog.procedure("f")
        assert proc.params == [("a", "long")]
        assert isinstance(proc.body, Assign)

    def test_pointer_sort(self):
        prog = parse_program(
            r"(\procdecl f ((p (\ref long))) long (:= (\res (\deref p))))"
        )
        assert prog.procedure("f").params[0][1] == "ref long"

    def test_opdecl_extends_registry(self):
        prog = parse_program(
            r"""
            (\opdecl myop (long long) long)
            (\procdecl f ((a long)) long (:= (\res (myop a a))))
            """
        )
        assert "myop" in prog.registry

    def test_axiom_in_program(self):
        prog = parse_program(
            r"""
            (\opdecl carry (long long) long)
            (\axiom (forall (a b) (pats (carry a b))
                (eq (carry a b) (\cmpult (\add64 a b) a))))
            """
        )
        assert len(prog.axioms) == 1

    def test_var_with_init(self):
        prog = parse_program(
            r"(\procdecl f ((a long)) long (\var (r long 0) (:= (\res r))))"
        )
        body = prog.procedure("f").body
        assert isinstance(body, VarDecl)
        assert body.init == 0

    def test_do_loop(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (n long)) long
                 (\semi
                   (\do (-> (< a n) (:= (a (+ a 1)))))
                   (:= (\res a))))"""
        )
        body = prog.procedure("f").body
        assert isinstance(body, Semi)
        assert isinstance(body.statements[0], DoLoop)

    def test_unroll_annotation(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (n long)) long
                 (\semi
                   (\unroll 4 (\do (-> (< a n) (:= (a (+ a 1))))))
                   (:= (\res a))))"""
        )
        loop = prog.procedure("f").body.statements[0]
        assert loop.unroll == 4

    def test_unroll_must_wrap_do(self):
        with pytest.raises(LangError):
            parse_program(
                r"(\procdecl f ((a long)) long (\unroll 2 (:= (\res a))))"
            )

    def test_unknown_statement_rejected(self):
        with pytest.raises(LangError):
            parse_program(r"(\procdecl f ((a long)) long (\frob a))")

    def test_unknown_toplevel_rejected(self):
        with pytest.raises(LangError):
            parse_program(r"(\blah x)")

    def test_unknown_sort_rejected(self):
        with pytest.raises(LangError):
            parse_program(r"(\procdecl f ((a quux)) long (:= (\res a)))")

    def test_missing_procedure_lookup(self):
        prog = parse_program(r"(\procdecl f ((a long)) long (:= (\res a)))")
        with pytest.raises(KeyError):
            prog.procedure("g")


class TestExpressions:
    def _term(self, src, **vars_):
        from repro.lang.translate import _State
        from repro.axioms.sexpr import parse_sexprs
        from repro.terms.ops import default_registry

        state = _State(default_registry())
        for name in vars_ or ["a"]:
            state.vars[name] = inp(name)
        if not vars_:
            state.vars["a"] = inp("a")
        return expr_to_term(parse_sexprs(src)[0], state)

    def test_arithmetic_sugar(self):
        t = self._term("(+ a 1)", a=True)
        assert t is mk("add64", inp("a"), const(1))

    def test_shift_sugar(self):
        assert self._term("(<< a 3)", a=True) is mk("sll", inp("a"), const(3))

    def test_comparison_sugar(self):
        t = self._term("(< a 10)", a=True)
        assert t.op == "cmpult"

    def test_unary_minus(self):
        assert self._term("(- a)", a=True).op == "neg64"

    def test_backslash_op(self):
        t = self._term(r"(\extbl a 2)", a=True)
        assert t.op == "extbl"

    def test_cast_short_masks(self):
        t = self._term(r"(\cast short a)", a=True)
        assert evaluate(t, {"a": 0x12345678}) == 0x5678

    def test_cast_int_sign_extends(self):
        t = self._term(r"(\cast int a)", a=True)
        assert evaluate(t, {"a": 0x80000000}) == 0xFFFFFFFF80000000

    def test_unknown_variable_rejected(self):
        with pytest.raises(TranslationError):
            self._term("(+ b 1)", a=True)

    def test_deref_uses_memory(self):
        t = self._term(r"(\deref a)", a=True)
        assert t.op == "select"
        assert t.args[0] is inp("M", Sort.MEM)


class TestTranslation:
    def test_straight_line_single_gma(self):
        prog = parse_program(
            r"(\procdecl f ((a long)) long (:= (\res (+ (* a 4) 1))))"
        )
        gmas = translate_procedure(prog.procedure("f"), prog.registry)
        assert len(gmas) == 1
        label, gma = gmas[0]
        assert label == "f.tail"
        assert gma.targets == ("\\res",)
        assert gma.newvals[0] is mk(
            "add64", mk("mul64", inp("a"), const(4)), const(1)
        )

    def test_sequential_assignments_compose(self):
        prog = parse_program(
            r"""(\procdecl f ((a long)) long
                 (\semi (:= (a (+ a 1))) (:= (\res (* a 2)))))"""
        )
        _, gma = translate_procedure(prog.procedure("f"), prog.registry)[0]
        assert evaluate(gma.newvals[0], {"a": 10}) == 22

    def test_simultaneous_assignment(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (b long)) long
                 (\semi (:= (a b) (b a)) (:= (\res (- a b)))))"""
        )
        _, gma = translate_procedure(prog.procedure("f"), prog.registry)[0]
        # After the swap, a=b0, b=a0, so res = b0 - a0.
        assert evaluate(gma.newvals[0], {"a": 3, "b": 10}) == 7

    def test_loop_becomes_guarded_gma(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (n long)) long
                 (\semi
                   (\do (-> (< a n) (:= (a (+ a 1)))))
                   (:= (\res a))))"""
        )
        gmas = dict(translate_procedure(prog.procedure("f"), prog.registry))
        loop = gmas["f.loop0"]
        assert loop.guard is not None
        assert loop.targets == ("a",)
        assert evaluate(loop.newvals[0], {"a": 5}) == 6

    def test_unrolled_loop_composes_iterations(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (n long)) long
                 (\semi
                   (\unroll 3 (\do (-> (< a n) (:= (a (+ a 2))))))
                   (:= (\res a))))"""
        )
        gmas = dict(translate_procedure(prog.procedure("f"), prog.registry))
        assert evaluate(gmas["f.loop0"].newvals[0], {"a": 0}) == 6

    def test_pointer_store_targets_memory(self):
        prog = parse_program(
            r"""(\procdecl f ((p (\ref long)) (x long)) long
                 (\semi (:= ((\deref p) x)) (:= (\res x))))"""
        )
        gmas = dict(translate_procedure(prog.procedure("f"), prog.registry))
        tail = gmas["f.tail"]
        assert "M" in tail.targets
        mem_val = tail.newvals[tail.targets.index("M")]
        assert mem_val.op == "store"

    def test_copy_loop_section3_example(self):
        """The paper's copy-routine GMA: p<r -> (*p,p,q) := (*q,p+8,q+8)."""
        prog = parse_program(
            r"""(\procdecl copy ((p (\ref long)) (q (\ref long)) (r (\ref long))) long
                 (\semi
                   (\do (-> (< p r)
                     (\semi
                       (:= ((\deref p) (\deref q)))
                       (:= (p (+ p 8)) (q (+ q 8))))))
                   (:= (\res 0))))"""
        )
        gmas = dict(translate_procedure(prog.procedure("copy"), prog.registry))
        loop = gmas["copy.loop0"]
        assert set(loop.targets) == {"M", "p", "q"}
        mem_val = loop.newvals[loop.targets.index("M")]
        # M := store(M, p, select(M, q))
        assert mem_val.op == "store"
        assert mem_val.args[2].op == "select"

    def test_setbyte_target(self):
        prog = parse_program(
            r"""(\procdecl bs ((a long)) long
                 (\var (r long 0)
                 (\semi
                   (:= ((\setbyte r 0) (\selectb a 3)))
                   (:= ((\setbyte r 3) (\selectb a 0)))
                   (:= (\res r)))))"""
        )
        _, gma = translate_procedure(prog.procedure("bs"), prog.registry)[0]
        v = evaluate(gma.newvals[0], {"a": 0x04030201})
        assert v == 0x01000004  # byte0 = a<3>, byte3 = a<0>

    def test_res_in_loop_rejected(self):
        prog = parse_program(
            r"""(\procdecl f ((a long) (n long)) long
                 (\do (-> (< a n) (:= (\res a)))))"""
        )
        with pytest.raises(TranslationError):
            translate_procedure(prog.procedure("f"), prog.registry)

    def test_empty_procedure_rejected(self):
        prog = parse_program(
            r"(\procdecl f ((a long)) long (\semi))"
        )
        with pytest.raises(TranslationError):
            translate_procedure(prog.procedure("f"), prog.registry)

    def test_unroll_helper(self):
        loop = DoLoop(guard=["<", "a", "n"], body=Semi([]))
        assert unroll_loop(loop, 4).unroll == 4
        with pytest.raises(TranslationError):
            unroll_loop(loop, 0)
