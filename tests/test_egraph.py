"""Tests for the union-find and the congruence-closed E-graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import EGraph, InconsistentError, UnionFind
from repro.terms import Sort, const, inp, mk


class TestUnionFind:
    def test_fresh_sets_are_distinct(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        assert not uf.same(a, b)

    def test_union_merges(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        uf.union(a, b)
        assert uf.same(a, b)

    def test_find_returns_root(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(5)]
        for x in ids[1:]:
            uf.union(ids[0], x)
        roots = {uf.find(x) for x in ids}
        assert len(roots) == 1

    def test_union_is_idempotent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        r1 = uf.union(a, b)
        r2 = uf.union(a, b)
        assert r1 == r2

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=50))
    def test_equivalence_matches_naive_model(self, pairs):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(20)]
        groups = [{i} for i in range(20)]

        def group_of(i):
            for g in groups:
                if i in g:
                    return g
            raise AssertionError

        for a, b in pairs:
            uf.union(ids[a], ids[b])
            ga, gb = group_of(a), group_of(b)
            if ga is not gb:
                groups.remove(gb)
                ga |= gb
        for i in range(20):
            for j in range(20):
                assert uf.same(ids[i], ids[j]) == (group_of(i) is group_of(j))


class TestEGraphBasics:
    def test_add_term_interns(self):
        eg = EGraph()
        t = mk("add64", inp("a"), const(1))
        assert eg.add_term(t) == eg.add_term(t)

    def test_structurally_equal_terms_share_class(self):
        eg = EGraph()
        c1 = eg.add_term(mk("add64", inp("a"), const(1)))
        c2 = eg.add_term(mk("add64", inp("a"), const(1)))
        assert eg.are_equal(c1, c2)

    def test_different_terms_different_classes(self):
        eg = EGraph()
        c1 = eg.add_term(inp("a"))
        c2 = eg.add_term(inp("b"))
        assert not eg.are_equal(c1, c2)

    def test_num_enodes_counts_dag_nodes(self):
        eg = EGraph()
        eg.add_term(mk("add64", mk("mul64", inp("a"), const(4)), const(1)))
        # add64, mul64, a, 4, 1
        assert eg.num_enodes() == 5

    def test_const_of(self):
        eg = EGraph()
        c = eg.add_term(const(42))
        assert eg.const_of(c) == 42

    def test_const_of_none_for_inputs(self):
        eg = EGraph()
        c = eg.add_term(inp("a"))
        assert eg.const_of(c) is None

    def test_class_sort_memory(self):
        eg = EGraph()
        c = eg.add_term(inp("M", Sort.MEM))
        assert eg.class_sort(c) == Sort.MEM

    def test_witness_recovers_term(self):
        eg = EGraph()
        t = mk("add64", inp("a"), const(1))
        cid = eg.add_term(t)
        nodes = eg.enodes(cid)
        assert any(eg.witness(n) is t for n in nodes)

    def test_nodes_with_op(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), const(1)))
        eg.add_term(mk("add64", inp("b"), const(2)))
        assert len(eg.nodes_with_op("add64")) == 2


class TestMergeAndCongruence:
    def test_merge_makes_equal(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        eg.merge(a, b)
        assert eg.are_equal(a, b)

    def test_congruence_propagates_up(self):
        # a = b  =>  f(a) = f(b)
        eg = EGraph()
        fa = eg.add_term(mk("not64", inp("a")))
        fb = eg.add_term(mk("not64", inp("b")))
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert eg.are_equal(fa, fb)

    def test_congruence_propagates_two_levels(self):
        eg = EGraph()
        ffa = eg.add_term(mk("not64", mk("not64", inp("a"))))
        ffb = eg.add_term(mk("not64", mk("not64", inp("b"))))
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert eg.are_equal(ffa, ffb)

    def test_congruence_multi_argument(self):
        eg = EGraph()
        t1 = eg.add_term(mk("add64", inp("a"), inp("x")))
        t2 = eg.add_term(mk("add64", inp("b"), inp("y")))
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert not eg.are_equal(t1, t2)
        eg.merge(eg.add_term(inp("x")), eg.add_term(inp("y")))
        assert eg.are_equal(t1, t2)

    def test_merge_classes_share_enodes(self):
        eg = EGraph()
        c1 = eg.add_term(mk("mul64", inp("a"), const(2)))
        c2 = eg.add_term(mk("sll", inp("a"), const(1)))
        eg.merge(c1, c2)
        ops = {n.op for n in eg.enodes(c1)}
        assert ops == {"mul64", "sll"}

    def test_new_enode_with_merged_args_reuses_class(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        eg.merge(a, b)
        fa = eg.add_term(mk("not64", inp("a")))
        fb = eg.add_term(mk("not64", inp("b")))
        assert eg.are_equal(fa, fb)

    def test_class_count_after_merge(self):
        eg = EGraph()
        c1 = eg.add_term(inp("a"))
        c2 = eg.add_term(inp("b"))
        n_before = eg.num_classes()
        eg.merge(c1, c2)
        assert eg.num_classes() == n_before - 1

    def test_merge_cascade(self):
        # A chain of merges at the leaves collapses a whole tower.
        eg = EGraph()
        ta, tb = inp("a"), inp("b")
        for _ in range(10):
            ta = mk("not64", ta)
            tb = mk("not64", tb)
        ca, cb = eg.add_term(ta), eg.add_term(tb)
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert eg.are_equal(ca, cb)


class TestDistinctions:
    def test_assert_distinct_blocks_merge(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        eg.assert_distinct(a, b)
        with pytest.raises(InconsistentError):
            eg.merge(a, b)

    def test_distinct_constants_implicit(self):
        eg = EGraph()
        c1, c2 = eg.add_term(const(1)), eg.add_term(const(2))
        assert eg.are_distinct(c1, c2)
        with pytest.raises(InconsistentError):
            eg.merge(c1, c2)

    def test_distinction_on_already_equal_raises(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        eg.merge(a, b)
        with pytest.raises(InconsistentError):
            eg.assert_distinct(a, b)

    def test_distinction_survives_other_merges(self):
        eg = EGraph()
        a, b, c = (eg.add_term(inp(n)) for n in "abc")
        eg.assert_distinct(a, b)
        eg.merge(b, c)  # now a != {b,c}
        with pytest.raises(InconsistentError):
            eg.merge(a, c)

    def test_sort_mismatch_merge_rejected(self):
        eg = EGraph()
        a = eg.add_term(inp("a"))
        m = eg.add_term(inp("M", Sort.MEM))
        with pytest.raises(InconsistentError):
            eg.merge(a, m)

    def test_are_distinct_false_by_default(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        assert not eg.are_distinct(a, b)


class TestEGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=8
        )
    )
    def test_congruence_matches_naive_closure(self, merges):
        """Compare against a naive O(n^3) congruence closure over a fixed universe."""
        leaves = [inp("v%d" % i) for i in range(6)]
        univ = list(leaves)
        univ += [mk("not64", x) for x in leaves]
        univ += [mk("add64", leaves[0], x) for x in leaves]

        eg = EGraph()
        ids = {t: eg.add_term(t) for t in univ}
        for i, j in merges:
            eg.merge(ids[leaves[i]], ids[leaves[j]])

        # Naive closure: iterate merging rules to fixpoint.
        parent = {t: t for t in univ}

        def find(t):
            while parent[t] is not t:
                t = parent[t]
            return t

        def union(x, y):
            rx, ry = find(x), find(y)
            if rx is not ry:
                parent[rx] = ry
                return True
            return False

        for i, j in merges:
            union(leaves[i], leaves[j])
        changed = True
        while changed:
            changed = False
            for t1 in univ:
                for t2 in univ:
                    if t1.op == t2.op and len(t1.args) == len(t2.args) and t1.args:
                        if all(find(a) is find(b) for a, b in zip(t1.args, t2.args)):
                            if union(t1, t2):
                                changed = True

        for t1 in univ:
            for t2 in univ:
                assert eg.are_equal(ids[t1], ids[t2]) == (find(t1) is find(t2)), (
                    t1,
                    t2,
                )
