"""Property-based end-to-end tests: random expressions through the pipeline.

For any expression the pipeline accepts, the emitted schedule must
(1) execute to the same values as the reference semantics on random
inputs, (2) validate on the timing model, and (3) never beat the
dataflow-depth lower bound.  This is the whole-system invariant the
paper's "correct by design" claim rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Denali, DenaliConfig, ev6, simple_risc, const, inp, mk
from repro.egraph.analysis import min_depth

pytestmark = pytest.mark.slow
from repro.matching import SaturationConfig
from repro.sim import simulate_timing

_BINOPS = ["add64", "sub64", "and64", "bis", "xor64", "cmpult"]
_UNOPS = ["not64", "neg64", "sextl"]
_SHIFTS = ["sll", "srl", "sra"]
_INPUTS = ["a", "b", "c"]


def _terms(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(_INPUTS).map(inp),
            st.integers(0, 255).map(const),
        )
    sub = _terms(depth - 1)
    return st.one_of(
        st.sampled_from(_INPUTS).map(inp),
        st.integers(0, 255).map(const),
        st.tuples(st.sampled_from(_BINOPS), sub, sub).map(
            lambda t: mk(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_UNOPS), sub).map(lambda t: mk(t[0], t[1])),
        st.tuples(st.sampled_from(_SHIFTS), sub, st.integers(0, 63)).map(
            lambda t: mk(t[0], t[1], const(t[2]))
        ),
    )


def _compile(term, spec):
    config = DenaliConfig(
        min_cycles=1,
        max_cycles=8,
        verify=False,  # we verify explicitly below, with more trials
        saturation=SaturationConfig(max_rounds=6, max_enodes=800),
    )
    return Denali(spec, config=config).compile_term(term)


class TestRandomExpressions:
    @settings(max_examples=40, deadline=None)
    @given(_terms(2))
    def test_compiled_code_is_correct_on_simple_risc(self, term):
        result = _compile(term, simple_risc())
        if result.schedule is None:
            return  # needs more than 8 cycles; nothing to check
        from repro.verify import check_schedule

        report = check_schedule(result.gma, result.schedule, trials=8)
        assert report.passed, (term.pretty(), report.failures[:2])

    @settings(max_examples=25, deadline=None)
    @given(_terms(2))
    def test_compiled_code_is_correct_on_ev6(self, term):
        result = _compile(term, ev6())
        if result.schedule is None:
            return
        from repro.verify import check_schedule

        report = check_schedule(result.gma, result.schedule, trials=8)
        assert report.passed, (term.pretty(), report.failures[:2])

    @settings(max_examples=25, deadline=None)
    @given(_terms(2))
    def test_schedules_validate_on_timing_model(self, term):
        spec = ev6()
        result = _compile(term, spec)
        if result.schedule is None:
            return
        report = simulate_timing(result.schedule, spec)
        assert report.ok, (term.pretty(), report.violations[:2])

    @settings(max_examples=25, deadline=None)
    @given(_terms(2))
    def test_optimum_respects_depth_lower_bound(self, term):
        spec = simple_risc()
        result = _compile(term, spec)
        if result.schedule is None or not result.optimal:
            return
        eg = result.egraph
        free = set()
        for name in _INPUTS:
            t = inp(name)
            try:
                free.add(eg.find(eg.add_term(t)))
            except KeyError:  # pragma: no cover
                pass
        lower = min_depth(
            eg,
            result.goal_classes[0],
            lambda op: spec.latency(op) if spec.is_machine_op(op) else None,
            free=free,
        )
        if lower is not None:
            assert result.cycles >= min(lower, 1) or result.cycles >= lower

    @settings(max_examples=20, deadline=None)
    @given(_terms(1))
    def test_ev6_never_slower_than_single_issue(self, term):
        """Quad issue can only help: EV6 optimum <= single-issue optimum
        (same latencies; EV6 restricts units but has four of them and a
        superset of per-cycle capacity... except the cross-cluster delay,
        so allow +1)."""
        r_narrow = _compile(term, simple_risc())
        r_wide = _compile(term, ev6())
        if r_narrow.schedule is None or r_wide.schedule is None:
            return
        if r_narrow.optimal and r_wide.optimal:
            assert r_wide.cycles <= r_narrow.cycles + 1
