"""Tests for E-matching and the saturation engine."""

import pytest

from repro.axioms import (
    AxiomSet,
    alpha_axioms,
    constant_synthesis_axioms,
    math_axioms,
    parse_axiom_file,
)
from repro.egraph import EGraph, InconsistentError
from repro.matching import (
    SaturationConfig,
    SaturationEngine,
    ematch,
    ematch_all,
    instantiate,
    saturate,
)
from repro.axioms.axiom import Pattern
from repro.terms import Sort, const, default_registry, inp, mk


def _axioms(text):
    return parse_axiom_file(text)


class TestEMatch:
    def test_variable_matches_any_class(self):
        eg = EGraph()
        c = eg.add_term(inp("a"))
        subs = list(ematch(eg, Pattern.variable("x"), c))
        assert subs == [{"x": eg.find(c)}]

    def test_constant_pattern_matches_value(self):
        eg = EGraph()
        c4 = eg.add_term(const(4))
        assert list(ematch(eg, Pattern.constant(4), c4)) == [{}]
        assert list(ematch(eg, Pattern.constant(5), c4)) == []

    def test_application_match(self):
        eg = EGraph()
        c = eg.add_term(mk("add64", inp("a"), const(1)))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.constant(1))
        subs = list(ematch(eg, pat, c))
        assert len(subs) == 1
        assert subs[0]["x"] == eg.find(eg.add_term(inp("a")))

    def test_nonlinear_pattern_requires_same_class(self):
        eg = EGraph()
        xx = eg.add_term(mk("add64", inp("a"), inp("a")))
        xy = eg.add_term(mk("add64", inp("a"), inp("b")))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.variable("x"))
        assert len(list(ematch(eg, pat, xx))) == 1
        assert len(list(ematch(eg, pat, xy))) == 0

    def test_nonlinear_matches_after_merge(self):
        eg = EGraph()
        xy = eg.add_term(mk("add64", inp("a"), inp("b")))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.variable("x"))
        eg.merge(eg.add_term(inp("a")), eg.add_term(inp("b")))
        assert len(list(ematch(eg, pat, xy))) == 1

    def test_match_through_equivalence(self):
        """The Figure 2 trick: k * 2**n matches reg6 * 4 via 4 = 2**2."""
        eg = EGraph()
        goal = eg.add_term(mk("mul64", inp("reg6"), const(4)))
        pow22 = eg.add_term(mk("pow", const(2), const(2)))
        pat = Pattern.apply(
            "mul64",
            Pattern.variable("k"),
            Pattern.apply("pow", Pattern.constant(2), Pattern.variable("n")),
        )
        assert list(ematch(eg, pat, goal)) == []  # before the merge
        eg.merge(pow22, eg.add_term(const(4)))
        subs = list(ematch(eg, pat, goal))
        assert len(subs) == 1
        assert eg.const_of(subs[0]["n"]) == 2

    def test_ematch_all_uses_head_operator(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), const(1)))
        eg.add_term(mk("add64", inp("b"), const(2)))
        eg.add_term(mk("sub64", inp("a"), const(1)))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.variable("y"))
        assert len(ematch_all(eg, pat)) == 2

    def test_ematch_all_respects_limit(self):
        eg = EGraph()
        for i in range(10):
            eg.add_term(mk("not64", inp("v%d" % i)))
        pat = Pattern.apply("not64", Pattern.variable("x"))
        assert len(ematch_all(eg, pat, limit=3)) == 3

    def test_ematch_all_rejects_leaf_trigger(self):
        eg = EGraph()
        with pytest.raises(ValueError):
            ematch_all(eg, Pattern.variable("x"))


class TestInstantiate:
    def test_builds_enodes(self):
        eg = EGraph()
        a = eg.add_term(inp("a"))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.constant(0))
        cid = instantiate(eg, pat, {"x": a}, default_registry())
        expected = eg.add_term(mk("add64", inp("a"), const(0)))
        assert eg.are_equal(cid, expected)

    def test_sort_mismatch_returns_none(self):
        eg = EGraph()
        m = eg.add_term(inp("M", Sort.MEM))
        pat = Pattern.apply("add64", Pattern.variable("x"), Pattern.constant(0))
        assert instantiate(eg, pat, {"x": m}, default_registry()) is None


class TestSaturation:
    def test_identity_axiom_merges(self):
        eg = EGraph()
        c = eg.add_term(mk("add64", inp("a"), const(0)))
        saturate(eg, _axioms(r"(\axiom (forall (x) (pats (\add64 x 0)) (eq (\add64 x 0) x)))"))
        assert eg.are_equal(c, eg.add_term(inp("a")))

    def test_commutativity_adds_flipped_node(self):
        eg = EGraph()
        c = eg.add_term(mk("add64", inp("a"), inp("b")))
        saturate(eg, _axioms(r"(\axiom (forall (x y) (pats (\add64 x y)) (eq (\add64 x y) (\add64 y x))))"))
        flipped = eg.add_term(mk("add64", inp("b"), inp("a")))
        assert eg.are_equal(c, flipped)

    def test_figure2_walkthrough(self):
        """reg6*4+1 acquires shift-add and s4addq forms (paper Figure 2)."""
        reg = default_registry()
        axioms = (
            math_axioms(reg) + constant_synthesis_axioms(reg) + alpha_axioms(reg)
        )
        eg = EGraph()
        goal = eg.add_term(
            mk("add64", mk("mul64", inp("reg6"), const(4)), const(1))
        )
        stats = saturate(eg, axioms, reg)
        assert stats.quiescent
        ops = {n.op for n in eg.enodes(goal)}
        assert "s4addq" in ops
        assert "add64" in ops

    def test_constant_folding(self):
        eg = EGraph()
        c = eg.add_term(mk("add64", const(2), const(3)))
        saturate(eg, AxiomSet())
        assert eg.const_of(c) == 5

    def test_constant_folding_nested(self):
        eg = EGraph()
        c = eg.add_term(mk("mul64", mk("add64", const(2), const(2)), const(3)))
        saturate(eg, AxiomSet())
        assert eg.const_of(c) == 12

    def test_constant_synthesis_only_for_mul_operands(self):
        eg = EGraph()
        eg.add_term(mk("mul64", inp("a"), const(8)))
        eg.add_term(mk("bis", inp("b"), const(16)))
        stats = saturate(eg, AxiomSet())
        # 8 (a mul operand) gets a pow node; 16 (a bis operand) does not.
        eight = eg.add_term(const(8))
        sixteen = eg.add_term(const(16))
        assert any(n.op == "pow" for n in eg.enodes(eight))
        assert not any(n.op == "pow" for n in eg.enodes(sixteen))
        assert stats.constants_synthesized == 1

    def test_clause_propagation_select_store(self):
        """The section 5 walkthrough: store then load at p+8 commutes."""
        reg = default_registry()
        eg = EGraph()
        m = inp("M", Sort.MEM)
        p = inp("p")
        load = mk(
            "select",
            mk("store", m, p, inp("x")),
            mk("add64", p, const(8)),
        )
        c_load = eg.add_term(load)
        direct = eg.add_term(mk("select", m, mk("add64", p, const(8))))
        # p != p+8 must be discoverable: assert it as a program fact
        # (the paper says "by mechanisms we will not describe").
        axioms = _axioms(
            r"""
            (\axiom (forall (a i j x) (pats (\select (\store a i x) j))
                (or (eq i j)
                    (eq (\select (\store a i x) j) (\select a j)))))
            (\axiom (forall (q) (pats (\add64 q 8)) (neq (\add64 q 8) q)))
            """
        )
        stats = saturate(eg, axioms, reg)
        assert eg.are_equal(c_load, direct)
        assert stats.clause_assertions >= 1

    def test_clause_untenable_all_literals_raises(self):
        eg = EGraph()
        a, b = eg.add_term(inp("a")), eg.add_term(inp("b"))
        axioms = _axioms(
            r"""
            (\axiom (forall (x) (pats (\not64 x)) (neq (\not64 x) (\not64 x))))
            """
        )
        eg.add_term(mk("not64", inp("a")))
        engine = SaturationEngine(eg, axioms)
        with pytest.raises(InconsistentError):
            engine.run()

    def test_round_budget_stops(self):
        # Associativity on a long chain cannot finish in one round.
        reg = default_registry()
        eg = EGraph()
        t = inp("x0")
        for i in range(1, 8):
            t = mk("add64", t, inp("x%d" % i))
        eg.add_term(t)
        axioms = math_axioms(reg).relevant_to({"add64"})
        stats = saturate(eg, axioms, reg, SaturationConfig(max_rounds=1))
        assert stats.rounds == 1
        assert not stats.quiescent

    def test_enode_budget_stops(self):
        reg = default_registry()
        eg = EGraph()
        t = inp("x0")
        for i in range(1, 8):
            t = mk("add64", t, inp("x%d" % i))
        eg.add_term(t)
        axioms = math_axioms(reg).relevant_to({"add64"})
        stats = saturate(
            eg, axioms, reg, SaturationConfig(max_rounds=50, max_enodes=60)
        )
        assert not stats.quiescent
        assert stats.enodes >= 60

    def test_instances_deduplicated(self):
        eg = EGraph()
        eg.add_term(mk("add64", inp("a"), inp("b")))
        axioms = _axioms(
            r"(\axiom (forall (x y) (pats (\add64 x y)) (eq (\add64 x y) (\add64 y x))))"
        )
        engine = SaturationEngine(eg, axioms)
        engine.run()
        first = engine.stats.instances_asserted
        assert first == 2  # (a,b) and its flip (b,a); both recorded once
        engine.run()
        assert engine.stats.instances_asserted == first  # nothing new

    def test_all_constant_instances_skipped(self):
        eg = EGraph()
        eg.add_term(mk("add64", const(3), const(4)))
        axioms = _axioms(
            r"(\axiom (forall (x y) (pats (\add64 x y)) (eq (\add64 x y) (\add64 y x))))"
        )
        stats = saturate(eg, axioms)
        # Folding handles the ground term; no commuted ground node appears.
        assert stats.instances_asserted == 0
        assert stats.constants_folded == 1
