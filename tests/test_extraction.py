"""Unit and differential tests for the exact extraction stage.

Three layers:

* hand-built e-graphs with known optima — the canonical shared-subterm
  diamond where greedy's per-class choice is strictly suboptimal, a
  merge-created cycle through a class, and tie-break determinism;
* greedy vs exact end-to-end over the pinned fuzz corpus — the exact
  mode must never cost more, never change the proved cycle count, and
  both schedules must verify;
* the ``--stats-json`` surface: both modes report their extraction
  record per GMA and in the aggregate totals.
"""

import json
from collections import namedtuple

import pytest

from repro.egraph.egraph import EGraph
from repro.extraction import (
    WeightedCounter,
    class_lower_bounds,
    enode_tree_bound,
    exact_select,
    greedy_select,
    prune_dominated,
    schedule_cost,
    unit_cost,
)

# -- fixtures ------------------------------------------------------------------


def _diamond_vs_chain():
    """Greedy picks the 6-op chain; the diamond shares P and costs 5.

    The merged root class holds two implementations: a multiply whose
    operands share the 2-op subterm P (tree cost 7, DAG cost 5) and a
    chain of 6 distinct ops (tree cost 6, DAG cost 6).  Greedy minimises
    the *tree* bound per class, so it takes the chain; the exact
    selector pays P once and proves 5.
    """
    eg = EGraph()
    a = eg.add_enode("input", (), name="a")
    b = eg.add_enode("input", (), name="b")
    p1 = eg.add_enode("sll", (a, b))
    p = eg.add_enode("add64", (p1, b))
    s = eg.add_enode("add64", (p, a))
    t = eg.add_enode("sub64", (p, b))
    n1 = eg.add_enode("mul64", (s, t))
    c = eg.add_enode("srl", (a, b))
    c = eg.add_enode("sra", (c, b))
    c = eg.add_enode("sextb", (c,))
    c = eg.add_enode("sextw", (c,))
    c = eg.add_enode("zap", (c, b))
    n2 = eg.add_enode("ornot", (c, b))
    eg.merge(n1, n2)
    eg.rebuild()
    return eg, eg.find(n1)


def _cyclic_class():
    """A merge-created cycle: class(a) also contains srl(class(x), b)."""
    eg = EGraph()
    a = eg.add_enode("input", (), name="a")
    b = eg.add_enode("input", (), name="b")
    x = eg.add_enode("sll", (a, b))
    y = eg.add_enode("srl", (x, b))
    eg.merge(y, a)
    eg.rebuild()
    return eg, eg.find(x)


# -- hand-built optima ---------------------------------------------------------


class TestSelectors:
    def test_greedy_realizes_the_chain(self):
        eg, root = _diamond_vs_chain()
        g = greedy_select(eg, [root])
        assert g.cost == 6
        assert g.mode == "greedy"
        assert "ornot(" in g.rendered[root]

    def test_exact_beats_greedy_on_the_diamond(self):
        eg, root = _diamond_vs_chain()
        g = greedy_select(eg, [root])
        x = exact_select(eg, [root])
        assert x.cost == 5 < g.cost
        assert x.optimal, "UNSAT at bound 4 proves no cheaper selection"
        assert x.mode == "exact"
        assert "mul64(" in x.rendered[root]

    def test_exact_is_deterministic(self):
        eg, root = _diamond_vs_chain()
        x1 = exact_select(eg, [root])
        x2 = exact_select(eg, [root])
        assert (x1.cost, x1.rendered) == (x2.cost, x2.rendered)

    def test_cycle_through_a_class_terminates(self):
        eg, root = _cyclic_class()
        g = greedy_select(eg, [root])
        x = exact_select(eg, [root])
        assert g.cost == 1  # sll($a, $b); never loops through srl
        assert x.cost == 1 and x.optimal
        assert g.rendered[root] == x.rendered[root]

    def test_tie_break_is_insertion_order_independent(self):
        """Two same-cost alternatives: the pick is structural, not
        historical."""

        def build(flip):
            eg = EGraph()
            a = eg.add_enode("input", (), name="a")
            b = eg.add_enode("input", (), name="b")
            ops = ("add64", "sub64")
            first, second = (ops[1], ops[0]) if flip else ops
            n1 = eg.add_enode(first, (a, b))
            n2 = eg.add_enode(second, (a, b))
            eg.merge(n1, n2)
            eg.rebuild()
            return eg, eg.find(n1)

        picks = []
        for flip in (False, True):
            eg, root = build(flip)
            g = greedy_select(eg, [root])
            x = exact_select(eg, [root])
            assert g.cost == x.cost == 1
            picks.append((g.rendered[root], x.rendered[root]))
        assert picks[0] == picks[1]

    def test_leaf_root_costs_zero(self):
        eg = EGraph()
        a = eg.add_enode("input", (), name="a")
        for sel in (greedy_select(eg, [a]), exact_select(eg, [a])):
            assert sel.cost == 0
            assert sel.rendered[eg.find(a)] == "$a"


# -- bounds, pruner, counter ---------------------------------------------------


class TestBounds:
    def test_tree_and_dag_bounds_on_the_diamond(self):
        eg, root = _diamond_vs_chain()
        tree = class_lower_bounds(eg, unit_cost, "tree")
        dag = class_lower_bounds(eg, unit_cost, "dag")
        assert tree[root] == 6  # the chain, every subterm paid once each
        # dag: 1 (mul64) + max over args; a lower bound, below the
        # realized optimum of 5 — the exact proof must close that gap.
        assert dag[root] == 4
        assert all(dag[c] <= tree[c] for c in tree)

    def test_bad_mode_rejected(self):
        eg, _root = _diamond_vs_chain()
        with pytest.raises(ValueError):
            class_lower_bounds(eg, unit_cost, "best")

    def test_viable_filter_can_make_a_class_unrealizable(self):
        eg, root = _diamond_vs_chain()
        bounds = class_lower_bounds(
            eg, unit_cost, "tree", viable=lambda n: n.op == "input"
        )
        assert root not in bounds

    def test_schedule_cost_counts_distinct_terms_once(self):
        Instr = namedtuple("Instr", "node")
        eg = EGraph()
        a = eg.add_enode("input", (), name="a")
        node = next(iter(eg.enodes(eg.find(a))))
        sll = EGraph()
        b = sll.add_enode("input", (), name="b")
        op = sll.add_enode("sll", (b, b))
        op_node = next(
            n for n in sll.enodes(sll.find(op)) if n.op == "sll"
        )
        instrs = [Instr(op_node), Instr(op_node), Instr(node)]
        # the repeated sll counts once; the input leaf still pays the
        # max(1, .) floor because a scheduled launch occupies a slot
        assert schedule_cost(instrs, unit_cost) == 1 + 1


class TestPruner:
    def test_survivors_keep_each_class_minimum(self):
        eg, root = _diamond_vs_chain()
        bounds = class_lower_bounds(eg, unit_cost, "tree")
        candidates = {
            cid: list(eg.enodes(cid))
            for cid in bounds
        }
        report = prune_dominated(eg, unit_cost, bounds, candidates, slack=0)
        for cid, nodes in candidates.items():
            if not nodes:
                continue
            kept = report.survivors[cid]
            assert kept, "pruning stranded class %d" % cid
            assert min(
                enode_tree_bound(eg, n, unit_cost, bounds) for n in kept
            ) == bounds[cid]
        assert report.kept + report.pruned == report.candidates

    def test_slack_zero_prunes_the_diamond_root_chain(self):
        eg, root = _diamond_vs_chain()
        bounds = class_lower_bounds(eg, unit_cost, "tree")
        candidates = {root: list(eg.enodes(root))}
        report = prune_dominated(eg, unit_cost, bounds, candidates, slack=0)
        ops = {n.op for n in report.survivors[root]}
        assert ops == {"ornot"}  # tree bound 6 == class bound; mul64 is 7
        report2 = prune_dominated(eg, unit_cost, bounds, candidates, slack=1)
        assert {n.op for n in report2.survivors[root]} == {"ornot", "mul64"}

    def test_unrealizable_class_is_emptied(self):
        eg, root = _diamond_vs_chain()
        candidates = {root: list(eg.enodes(root))}
        report = prune_dominated(eg, unit_cost, {}, candidates, slack=2)
        assert report.survivors[root] == []
        assert report.pruned == len(candidates[root])


class TestWeightedCounter:
    def test_row_semantics_and_truncation(self):
        clauses = []
        counter_vars = [0]

        def new_var():
            counter_vars[0] += 1
            return counter_vars[0]

        counter = WeightedCounter(new_var, clauses.append, cap=4)
        counter.geq(1)  # empty counter: trivially None
        counter.add(101, 2)
        counter.add(102, 3)
        assert counter.weight_total == 5
        assert counter.geq(5) is not None  # reachable: both items true
        with pytest.raises(ValueError):
            counter.geq(6)  # beyond cap + 1: truncated away
        with pytest.raises(ValueError):
            counter.geq(0)
        assert all(
            all(lit != 0 for lit in clause) for clause in clauses
        )

    def test_zero_weight_items_are_free(self):
        counter = WeightedCounter(lambda: 1, lambda c: None, cap=3)
        counter.add(7, 0)
        assert counter.weight_total == 0
        assert counter.geq(1) is None


# -- greedy vs exact over the pinned corpus ------------------------------------


def _compile(gma, registry, axioms, extraction, label):
    from repro.core.pipeline import Denali, DenaliConfig
    from repro.isa import ev6
    from repro.matching import SaturationConfig

    config = DenaliConfig(
        max_cycles=12,
        extraction=extraction,
        saturation=SaturationConfig(max_rounds=10, max_enodes=3000),
    )
    den = Denali(ev6(), axioms=axioms, registry=registry, config=config)
    return den.compile_gma(gma, label=label)


def test_corpus_greedy_vs_exact():
    """Differential rig: every pinned corpus GMA, both extraction modes."""
    from repro.axioms import AxiomSet
    from repro.core import cache as _cache
    from repro.fuzz import load_corpus
    from repro.lang import parse_program, translate_procedure

    entries = load_corpus()
    assert len(entries) >= 10
    compared = 0
    for entry in entries:
        program = parse_program(entry.source)
        registry = program.registry
        axioms = _cache.global_axiom_cache().default_corpus(registry)
        if program.axioms:
            axioms = axioms + AxiomSet(program.axioms, "program")
        for proc in program.procedures:
            for label, gma in translate_procedure(proc, registry):
                rg = _compile(gma, registry, axioms, "greedy", label)
                rx = _compile(gma, registry, axioms, "exact", label)
                assert (rg.schedule is None) == (rx.schedule is None), (
                    entry.name, label
                )
                if rg.schedule is None:
                    continue
                compared += 1
                assert rx.cycles == rg.cycles, (entry.name, label)
                assert rg.verified and rx.verified, (entry.name, label)
                g_rec, x_rec = rg.stats.extraction, rx.stats.extraction
                assert g_rec["mode"] == "greedy"
                assert x_rec["mode"] == "exact"
                assert x_rec["cost"] <= g_rec["cost"], (entry.name, label)
                assert x_rec["exact_cost"] <= x_rec["greedy_cost"]
                assert x_rec["improved"] == (
                    x_rec["exact_cost"] < x_rec["greedy_cost"]
                )
    assert compared >= 10, "corpus lost its compilable entries"


# -- the stats surface ---------------------------------------------------------


SIMPLE = r"""
(\procdecl scale ((a long)) long
  (:= (\res (+ (* a 4) 1))))
"""


class TestStatsSurface:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "prog.dn"
        path.write_text(SIMPLE)
        return str(path)

    def test_stats_json_reports_greedy_record(self, source_file, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "stats.json")
        status = main([source_file, "--quiet", "--stats-json", path])
        assert status == 0
        report = json.load(open(path))
        rec = report["gmas"][0]["extraction"]
        assert rec["mode"] == "greedy"
        assert rec["cost"] >= 1
        totals = report["totals"]["extraction"]
        assert totals["sessions"] == len(report["gmas"])
        assert totals["exact_sessions"] == 0

    def test_stats_json_reports_exact_record(self, source_file, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "stats.json")
        status = main([source_file, "--quiet", "--extraction", "exact",
                       "--stats-json", path])
        assert status == 0
        report = json.load(open(path))
        rec = report["gmas"][0]["extraction"]
        assert rec["mode"] == "exact"
        assert {"cost", "greedy_cost", "exact_cost", "improved", "proved",
                "candidates", "pruned", "slack", "solves", "floor",
                "seconds"} <= set(rec)
        assert rec["exact_cost"] <= rec["greedy_cost"]
        totals = report["totals"]["extraction"]
        assert totals["exact_sessions"] == len(report["gmas"])
        assert totals["exact_cost"] <= totals["greedy_cost"]

    def test_unknown_extraction_mode_is_rejected(self):
        from repro.core.pipeline import Denali, DenaliConfig
        from repro.isa import ev6

        den = Denali(ev6(), config=DenaliConfig(extraction="best"))
        with pytest.raises(ValueError, match="extraction"):
            den.compile_gma(None)
