"""Exhaustive semantic checks of the CNF cardinality encodings.

The sequential at-most-one encoding introduces auxiliary variables; these
tests verify, by full enumeration over the *original* variables, that the
constraint accepts exactly the assignments with <= 1 (or == 1) true
literals — i.e. the auxiliaries never exclude a legal assignment and never
admit an illegal one.
"""

import itertools

import pytest

from repro.sat import CNF, CdclSolver


def _projectable(cnf, xs, assignment):
    """Is the formula satisfiable with xs fixed to the given booleans?"""
    assumptions = [x if value else -x for x, value in zip(xs, assignment)]
    return CdclSolver().solve(cnf, assumptions=assumptions).satisfiable


class TestAtMostOneSemantics:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 7, 8, 10])
    def test_exact_projection(self, n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        cnf.at_most_one(xs)
        for bits in itertools.product([False, True], repeat=n):
            want = sum(bits) <= 1
            got = _projectable(cnf, xs, bits)
            assert got == want, bits

    @pytest.mark.parametrize("n", [2, 4, 7, 9])
    def test_exactly_one_projection(self, n):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(n)]
        cnf.exactly_one(xs)
        for bits in itertools.product([False, True], repeat=n):
            want = sum(bits) == 1
            got = _projectable(cnf, xs, bits)
            assert got == want, bits

    def test_singleton_no_clauses(self):
        cnf = CNF()
        x = cnf.new_var()
        cnf.at_most_one([x])
        assert len(cnf) == 0

    def test_empty_no_clauses(self):
        cnf = CNF()
        cnf.at_most_one([])
        assert len(cnf) == 0

    def test_sequential_encoding_is_linear(self):
        cnf = CNF()
        xs = [cnf.new_var() for _ in range(50)]
        cnf.at_most_one(xs)
        # Pairwise would be 1225 clauses; sequential is ~3n.
        assert len(cnf) < 200


class TestIffOr:
    def test_definition_both_directions(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.iff_or(a, [b, c])
        for bits in itertools.product([False, True], repeat=3):
            va, vb, vc = bits
            want = va == (vb or vc)
            got = _projectable(cnf, [a, b, c], bits)
            assert got == want, bits

    def test_empty_disjunction_forces_false(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.iff_or(a, [])
        assert _projectable(cnf, [a], [False])
        assert not _projectable(cnf, [a], [True])


class TestImplications:
    def test_implies_all(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.implies_all(a, [b, c])
        assert not _projectable(cnf, [a, b], [True, False])
        assert _projectable(cnf, [a, b, c], [True, True, True])
        assert _projectable(cnf, [a], [False])

    def test_implies_or(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.implies_or(a, [b, c])
        assert not _projectable(cnf, [a, b, c], [True, False, False])
        assert _projectable(cnf, [a, b, c], [True, False, True])
