"""Property tests for the extraction subsystem.

Random e-graphs (random DAG growth plus random merges, so cyclic
classes appear routinely) drive three invariants:

* the dominance pruner never strands a reachable class — the survivors
  always include a node achieving the class's own tree bound, at any
  slack;
* the cost analyses are admissible: the ``tree`` bound never exceeds
  the realized tree cost of the greedy choice, the ``dag`` bound never
  exceeds the realized DAG cost of any selection, and the exact
  selector lands between the DAG floor and the greedy cost;
* exact selection is a pure function of the graph's *shape*: inserting
  the same e-nodes in a different order (and unioning the same classes
  in a different order) yields byte-identical rendered terms and equal
  cost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph.egraph import EGraph
from repro.extraction import (
    class_lower_bounds,
    enode_tree_bound,
    exact_select,
    greedy_select,
    prune_dominated,
    unit_cost,
)

OPS = (("sextb", 1), ("add64", 2), ("sub64", 2), ("cmov", 3))


def _grow(specs, merges):
    """Deterministic e-graph from (op, arg-indices) rows + merge pairs.

    Each row's arguments index (modulo) the classes created so far, so
    the graph is a random DAG; merges then union arbitrary classes,
    which routinely creates cycles through classes.
    """
    eg = EGraph()
    classes = [
        eg.add_enode("input", (), name="a"),
        eg.add_enode("input", (), name="b"),
        eg.add_enode("const", (), value=0),
    ]
    for op_idx, arg_idxs in specs:
        op, arity = OPS[op_idx % len(OPS)]
        args = tuple(
            classes[idx % len(classes)] for idx in arg_idxs[:arity]
        )
        classes.append(eg.add_enode(op, args))
    for i, j in merges:
        eg.merge(classes[i % len(classes)], classes[j % len(classes)])
    eg.rebuild()
    return eg, [eg.find(c) for c in classes]


SPEC = st.tuples(
    st.integers(min_value=0, max_value=len(OPS) - 1),
    st.tuples(st.integers(0, 23), st.integers(0, 23), st.integers(0, 23)),
)
GRAPHS = st.tuples(
    st.lists(SPEC, min_size=1, max_size=10),
    st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)),
        max_size=4,
    ),
)


@settings(max_examples=60, deadline=None)
@given(GRAPHS, st.integers(min_value=0, max_value=2))
def test_pruner_never_strands_a_reachable_class(graph, slack):
    specs, merges = graph
    eg, _classes = _grow(specs, merges)
    bounds = class_lower_bounds(eg, unit_cost, "tree")
    candidates = {
        cid: [
            node
            for node in eg.enodes(cid)
            if all(eg.find(a) in bounds for a in node.args)
        ]
        for cid in bounds
    }
    report = prune_dominated(eg, unit_cost, bounds, candidates, slack=slack)
    for cid, nodes in candidates.items():
        if not nodes:
            continue
        kept = report.survivors[cid]
        assert kept, "slack %d stranded class %d" % (slack, cid)
        through = [
            enode_tree_bound(eg, n, unit_cost, bounds) for n in kept
        ]
        assert min(t for t in through if t is not None) == bounds[cid]
        assert set(kept) <= set(nodes)
    assert report.kept + report.pruned == report.candidates


def _tree_cost(eg, choice, root):
    """Realized tree cost of a selection: every occurrence paid."""
    memo = {}

    def walk(cid):
        cid = eg.find(cid)
        if cid in memo:
            return memo[cid]
        node = choice[cid]
        memo[cid] = 0  # selections are well-founded; guard regardless
        total = unit_cost(node) + sum(walk(a) for a in node.args)
        memo[cid] = total
        return total

    return walk(root)


@settings(max_examples=60, deadline=None)
@given(GRAPHS)
def test_bounds_are_admissible_and_exact_is_sandwiched(graph):
    specs, merges = graph
    eg, classes = _grow(specs, merges)
    root = classes[-1]
    tree = class_lower_bounds(eg, unit_cost, "tree")
    dag = class_lower_bounds(eg, unit_cost, "dag")
    assert set(dag) == set(tree)
    assert all(dag[c] <= tree[c] for c in tree)

    greedy = greedy_select(eg, [root])
    exact = exact_select(eg, [root])
    if root not in tree:
        assert greedy.cost is None and exact.cost is None
        return
    assert greedy.cost is not None and exact.cost is not None
    assert tree[root] <= _tree_cost(eg, greedy.choice, root)
    assert dag[root] <= exact.cost <= greedy.cost
    if exact.optimal:
        assert exact.cost >= dag[root]


@settings(max_examples=40, deadline=None)
@given(GRAPHS, st.randoms(use_true_random=False))
def test_exact_selection_ignores_insertion_order(graph, rng):
    specs, merges = graph
    order = list(range(len(specs)))
    rng.shuffle(order)
    merge_order = list(range(len(merges)))
    rng.shuffle(merge_order)

    # Build A in the given order; build B with the node rows inserted in
    # a shuffled order.  Rows only ever reference earlier classes, so a
    # permuted build must remap argument indices: row ``specs[i]`` sees
    # the class list [bases..., spec 0, spec 1, ...] of build A — give
    # build B the same view by resolving arguments against A's indexing.
    def grow_in(order_):
        eg = EGraph()
        base = [
            eg.add_enode("input", (), name="a"),
            eg.add_enode("input", (), name="b"),
            eg.add_enode("const", (), value=0),
        ]
        created = {}
        pending = list(order_)
        while pending:
            progressed = False
            for k in list(pending):
                op_idx, arg_idxs = specs[k]
                op, arity = OPS[op_idx % len(OPS)]
                universe = 3 + k  # what row k could see in build A
                refs = [idx % universe for idx in arg_idxs[:arity]]
                if any(r >= 3 and (r - 3) not in created for r in refs):
                    continue  # an argument row hasn't been inserted yet
                args = tuple(
                    base[r] if r < 3 else created[r - 3] for r in refs
                )
                created[k] = eg.add_enode(op, args)
                pending.remove(k)
                progressed = True
            assert progressed, "dependency cycle in straight-line specs"
        classes = base + [created[k] for k in range(len(specs))]
        for m in merge_order:
            i, j = merges[m]
            eg.merge(classes[i % len(classes)], classes[j % len(classes)])
        eg.rebuild()
        return eg, classes

    eg_a, cls_a = grow_in(range(len(specs)))
    eg_b, cls_b = grow_in(order)
    assert eg_a.num_enodes() == eg_b.num_enodes()

    root_a, root_b = cls_a[-1], cls_b[-1]
    sel_a = exact_select(eg_a, [root_a])
    sel_b = exact_select(eg_b, [root_b])
    assert sel_a.cost == sel_b.cost
    assert sel_a.optimal == sel_b.optimal
    ra = sel_a.rendered.get(eg_a.find(root_a))
    rb = sel_b.rendered.get(eg_b.find(root_b))
    assert ra == rb

    ga = greedy_select(eg_a, [root_a])
    gb = greedy_select(eg_b, [root_b])
    assert ga.cost == gb.cost
    assert ga.rendered.get(eg_a.find(root_a)) == gb.rendered.get(
        eg_b.find(root_b)
    )
