"""Differential property tests for the flat struct-of-arrays cores.

The flat refactor replaced per-object records (dict-of-lists watch
maps, per-class Python sets, per-node ENode wrappers on the hot path)
with parallel columns.  These tests pin the refactored kernels against
small *legacy-shaped* reference models — plain dicts and lists driven
by the same random operation sequences — so any divergence between the
flat layout and the obvious semantics is caught structurally, not just
through end-to-end decode identity:

* union-find: partition equivalence against a naive parent-dict model,
  plus ``find_many`` / ``find`` agreement;
* solver trail: decide/enqueue/backtrack sequences against a frame
  stack of assignment dicts, including phase saving;
* watch lists: every permanent clause is watched by exactly the two
  literals in its watch slots, before and after solving;
* hashcons + congruence: interning and merge closure against a naive
  fixpoint congruence model over the same node sequence;
* the ``repro.util.soa`` primitives against their list-slice
  equivalents.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph.egraph import EGraph
from repro.egraph.unionfind import UnionFind
from repro.sat.solver import _NO_REASON, _SolverCore
from repro.terms.ops import Sort
from repro.util import soa


# -- reference models ----------------------------------------------------------


class DictUnionFind:
    """The legacy-shaped reference: a parent dict, no rank, no splitting."""

    def __init__(self):
        self.parent = {}

    def make_set(self):
        x = len(self.parent)
        self.parent[x] = x
        return x

    def find(self, x):
        while self.parent[x] != x:
            x = self.parent[x]
        return x

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        self.parent[ra] = rb
        return rb

    def same(self, a, b):
        return self.find(a) == self.find(b)


def _uf_ops(max_sets=10, max_ops=30):
    op = st.one_of(
        st.just(("make",)),
        st.tuples(
            st.just("union"),
            st.integers(0, max_sets - 1),
            st.integers(0, max_sets - 1),
        ),
    )
    return st.lists(op, min_size=1, max_size=max_ops)


class TestUnionFindDifferential:
    @given(_uf_ops())
    @settings(max_examples=60, deadline=None)
    def test_partition_matches_dict_model(self, ops):
        uf = UnionFind()
        ref = DictUnionFind()
        for op in ops:
            if op[0] == "make":
                assert uf.make_set() == ref.make_set()
            else:
                _, a, b = op
                if a < len(ref.parent) and b < len(ref.parent):
                    uf.union(a, b)
                    ref.union(a, b)
        n = len(ref.parent)
        assert len(uf) == n
        for a in range(n):
            for b in range(a, n):
                assert uf.same(a, b) == ref.same(a, b)

    @given(_uf_ops())
    @settings(max_examples=60, deadline=None)
    def test_find_many_agrees_with_find(self, ops):
        uf = UnionFind()
        for op in ops:
            if op[0] == "make":
                uf.make_set()
            elif len(uf) > 0:
                _, a, b = op
                uf.union(a % len(uf), b % len(uf))
        xs = list(range(len(uf)))
        assert uf.find_many(xs) == [uf.find(x) for x in xs]


# -- solver trail ----------------------------------------------------------


def _trail_ops(num_vars=8, max_ops=40):
    lit = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    op = st.one_of(
        st.tuples(st.just("decide"), lit),
        st.tuples(st.just("enqueue"), lit),
        st.tuples(st.just("backtrack"), st.integers(0, 6)),
    )
    return st.lists(op, min_size=1, max_size=max_ops)


class TestTrailDifferential:
    @given(_trail_ops())
    @settings(max_examples=80, deadline=None)
    def test_trail_matches_frame_stack(self, ops):
        num_vars = 8
        core = _SolverCore()
        core.grow(num_vars)
        # Reference: a stack of per-level assignment dicts (frame 0 is
        # the root level) plus a phase dict mirroring save-on-unwind.
        frames = [{}]
        phases = {v: False for v in range(1, num_vars + 1)}

        def ref_assigned():
            merged = {}
            for f in frames:
                merged.update(f)
            return merged

        for op in ops:
            if op[0] == "decide":
                lit = op[1]
                v = abs(lit)
                if v in ref_assigned():
                    continue
                core._trail_lim.append(len(core._trail))
                core._enqueue(lit, _NO_REASON)
                frames.append({v: lit > 0})
            elif op[0] == "enqueue":
                lit = op[1]
                v = abs(lit)
                if v in ref_assigned():
                    continue
                core._enqueue(lit, _NO_REASON)
                frames[-1][v] = lit > 0
            else:
                level = op[1]
                if level >= len(frames) - 1:
                    continue
                core._backtrack(level)
                while len(frames) - 1 > level:
                    dropped = frames.pop()
                    for v, val in dropped.items():
                        phases[v] = val
            assigned = ref_assigned()
            assert core._decision_level() == len(frames) - 1
            for v in range(1, num_vars + 1):
                want = assigned.get(v)
                got = core._value(v)
                assert got == (-1 if want is None else int(want))
        # Phase saving: every unwound variable remembered its last value.
        for v in range(1, num_vars + 1):
            if v not in ref_assigned():
                assert core._phase[v] == phases[v]

    @given(_trail_ops())
    @settings(max_examples=40, deadline=None)
    def test_backtrack_keeps_heap_usable(self, ops):
        """After any unwind sequence the VSIDS heap still yields every
        unassigned variable (the lazy canonical-mode rebuild included)."""
        num_vars = 8
        core = _SolverCore()
        core.grow(num_vars)
        level_vars = []
        for op in ops:
            if op[0] == "decide":
                v = abs(op[1])
                if core._value(v) != -1:
                    continue
                core._trail_lim.append(len(core._trail))
                core._enqueue(op[1], _NO_REASON)
                level_vars.append(v)
            elif op[0] == "backtrack":
                level = op[1]
                if level < core._decision_level():
                    core._backtrack(level)
                    del level_vars[level:]
        # Drain the heap the way _decide does.
        seen = set()
        heap = list(core._heap)
        heapq.heapify(heap)
        while heap:
            neg_act, v = heapq.heappop(heap)
            if core._value(v) == -1 and -neg_act == core._activity[v]:
                seen.add(v)
        unassigned = {
            v for v in range(1, num_vars + 1) if core._value(v) == -1
        }
        if core._heap_stale:
            # Canonical-mode unwinds defer maintenance; the rebuild in
            # _decide must cover exactly the unassigned variables.
            rebuilt = {
                u for u in range(1, num_vars + 1) if core._value(u) == -1
            }
            assert rebuilt == unassigned
        else:
            assert unassigned <= seen


# -- watch lists ---------------------------------------------------------------


def _feeds(max_vars=6, max_clauses=12, max_len=4):
    lit = st.integers(1, max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    # Trusted feeds guarantee no duplicate variables within a clause.
    clause = st.lists(
        lit, min_size=1, max_size=max_len, unique_by=lambda l: abs(l)
    )
    return st.lists(clause, min_size=1, max_size=max_clauses)


def _watch_model(core):
    """Rebuild lit -> sorted clause refs from the arena's watch slots."""
    model = {}
    for ref in core._clauses:
        for slot in (ref + 1, ref + 2):
            lit = core._arena[slot]
            model.setdefault(lit, []).append(ref)
    return {lit: sorted(refs) for lit, refs in model.items()}


def _watch_lists(core):
    out = {}
    for lit in range(1, core.num_vars + 1):
        for signed in (lit, -lit):
            idx = 2 * signed if signed > 0 else 1 - 2 * signed
            refs = [r for r in core._watches[idx] if r in set(core._clauses)]
            if refs:
                out[signed] = sorted(refs)
    return out


class TestWatchListDifferential:
    @given(_feeds())
    @settings(max_examples=60, deadline=None)
    def test_trusted_feed_watches_match_arena_slots(self, clauses):
        core = _SolverCore()
        core.grow(6)
        core.add_clauses_trusted([list(c) for c in clauses])
        assert _watch_lists(core) == _watch_model(core)

    @given(_feeds())
    @settings(max_examples=40, deadline=None)
    def test_watches_consistent_after_solving(self, clauses):
        core = _SolverCore()
        core.grow(6)
        core.add_clauses_trusted([list(c) for c in clauses])
        core.run()
        assert _watch_lists(core) == _watch_model(core)

    @given(_feeds())
    @settings(max_examples=40, deadline=None)
    def test_trusted_feed_verdict_matches_validated_path(self, clauses):
        trusted = _SolverCore()
        trusted.grow(6)
        trusted.add_clauses_trusted([list(c) for c in clauses])
        checked = _SolverCore()
        checked.grow(6)
        for c in clauses:
            checked.add_clause(list(c))
        assert (
            trusted.run(canonical=True).satisfiable
            == checked.run(canonical=True).satisfiable
        )


# -- hashcons + congruence -----------------------------------------------------


def _graph_programs(max_nodes=8, max_merges=4):
    node = st.tuples(
        st.sampled_from(["f", "g", "const"]),
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.integers(0, 3),
    )
    merge = st.tuples(
        st.integers(0, max_nodes - 1), st.integers(0, max_nodes - 1)
    )
    return st.tuples(
        st.lists(node, min_size=1, max_size=max_nodes),
        st.lists(merge, min_size=0, max_size=max_merges),
    )


class _RefCongruence:
    """Naive fixpoint congruence closure over an append-only node list."""

    def __init__(self):
        self.nodes = []  # (op, arg node-ids, value)
        self.uf = DictUnionFind()

    def add(self, op, args, value):
        self.nodes.append((op, tuple(args), value))
        self.uf.make_set()
        return len(self.nodes) - 1

    def merge(self, a, b):
        self.uf.union(a, b)

    def closed(self, extra=None):
        """A congruence-closed copy of the union-find (plus one union)."""
        tmp = DictUnionFind()
        tmp.parent = dict(self.uf.parent)
        if extra is not None:
            tmp.union(*extra)
        changed = True
        while changed:
            changed = False
            for i, (op_i, args_i, val_i) in enumerate(self.nodes):
                for j in range(i + 1, len(self.nodes)):
                    op_j, args_j, val_j = self.nodes[j]
                    if tmp.same(i, j):
                        continue
                    if (
                        op_i == op_j
                        and val_i == val_j
                        and len(args_i) == len(args_j)
                        and all(
                            tmp.same(x, y)
                            for x, y in zip(args_i, args_j)
                        )
                    ):
                        tmp.union(i, j)
                        changed = True
        return tmp

    def close(self):
        self.uf = self.closed()


class TestHashconsDifferential:
    @given(_graph_programs())
    @settings(max_examples=60, deadline=None)
    def test_congruence_matches_naive_fixpoint(self, program):
        specs, merges = program
        eg = EGraph()
        ref = _RefCongruence()
        cids = []
        for op, a1, a2, value in specs:
            if op == "const":
                cid = eg.add_enode("const", (), value=value, sort=Sort.INT)
                rid = ref.add("const", (), value)
            else:
                arity = 1 if op == "g" else 2
                picks = [a1, a2][:arity]
                if not cids:
                    cid = eg.add_enode("const", (), value=value,
                                       sort=Sort.INT)
                    rid = ref.add("const", (), value)
                else:
                    args = [cids[p % len(cids)] for p in picks]
                    rargs = [p % len(cids) for p in picks]
                    cid = eg.add_enode(op, tuple(args), sort=Sort.INT)
                    rid = ref.add(op, tuple(rargs), None)
            cids.append(cid)
            assert rid == len(cids) - 1
        for a, b in merges:
            if not cids:
                continue
            ia, ib = a % len(cids), b % len(cids)
            # Merging two distinct constants — directly or through the
            # congruence closure of earlier merges — is an
            # InconsistentError in the e-graph (constants are inherently
            # distinct); generate only consistent merge sequences.
            tmp = ref.closed(extra=(ia, ib))
            root_val = {}
            conflict = False
            for i, (op_i, _args, val_i) in enumerate(ref.nodes):
                if op_i != "const":
                    continue
                root = tmp.find(i)
                if root in root_val and root_val[root] != val_i:
                    conflict = True
                    break
                root_val[root] = val_i
            if conflict:
                continue
            eg.merge(cids[ia], cids[ib])
            ref.merge(ia, ib)
        eg.rebuild()
        ref.close()
        for i in range(len(cids)):
            for j in range(i + 1, len(cids)):
                assert (
                    eg.find(cids[i]) == eg.find(cids[j])
                ) == ref.uf.same(i, j), (i, j)

    @given(_graph_programs(max_nodes=6, max_merges=0))
    @settings(max_examples=40, deadline=None)
    def test_interning_is_stable(self, program):
        """Re-adding any existing enode returns its original class."""
        specs, _ = program
        eg = EGraph()
        made = []  # (op, args, value) -> cid
        cids = []
        for op, a1, a2, value in specs:
            if op == "const" or not cids:
                key = ("const", (), value)
                cid = eg.add_enode("const", (), value=value, sort=Sort.INT)
            else:
                arity = 1 if op == "g" else 2
                args = tuple(cids[p % len(cids)] for p in [a1, a2][:arity])
                key = (op, args, None)
                cid = eg.add_enode(op, args, sort=Sort.INT)
            cids.append(cid)
            made.append((key, cid))
        for (op, args, value), cid in made:
            again = eg.add_enode(op, args, value=value, sort=Sort.INT)
            assert eg.find(again) == eg.find(cid)


# -- soa primitives ------------------------------------------------------------


class TestSoaPrimitives:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=20),
        st.integers(0, 19),
    )
    @settings(max_examples=60, deadline=None)
    def test_swap_remove_matches_set_semantics(self, items, idx):
        if idx >= len(items):
            idx = idx % len(items)
        for build in (list, bytearray):
            col = build(items)
            removed = soa.swap_remove(col, idx)
            assert removed == items[idx]
            want = list(items)
            want[idx] = want[-1]
            want.pop()
            assert list(col) == want

    @given(
        st.lists(st.integers(0, 255), min_size=0, max_size=10),
        st.lists(st.integers(0, 255), min_size=0, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_checkpoint_rollback_roundtrip(self, base, extra):
        for build in (list, bytearray):
            col = build(base)
            marks = soa.checkpoint(col)
            col.extend(extra)
            soa.rollback(marks, col)
            assert list(col) == base

    @given(st.lists(st.integers(0, 255), max_size=10), st.integers(0, 16))
    @settings(max_examples=60, deadline=None)
    def test_grow_and_bytes(self, base, pad):
        lst = list(base)
        ba = bytearray(base)
        soa.grow(lst, pad, 7)
        soa.grow(ba, pad, 7)
        assert lst == list(base) + [7] * pad
        assert ba == bytearray(base) + bytearray([7] * pad)
        assert soa.column_bytes(lst) == soa.LIST_SLOT_BYTES * len(lst)
        assert soa.column_bytes(ba) == len(ba)
        assert soa.columns_bytes(lst, ba) == (
            soa.column_bytes(lst) + soa.column_bytes(ba)
        )
        copy = soa.copy_column(ba)
        copy.append(1)
        assert len(copy) == len(ba) + 1
