"""Tests for the constraint generator (paper section 6 + section 7 extras).

Strategy: encode small, hand-analysable problems on the single-issue
machine (the paper's expository model) and on the EV6, solve, and check the
decoded schedules; compare against known-infeasible budgets.
"""

import pytest

from repro.core.emit import extract_schedule
from repro.egraph import EGraph
from repro.encode import EncodeError, EncodingOptions, encode_schedule
from repro.isa import ev6, simple_risc
from repro.matching import saturate
from repro.axioms import AxiomSet
from repro.sat import CdclSolver
from repro.sim import simulate_timing
from repro.terms import Sort, const, inp, mk


def _solve(encoding):
    return CdclSolver().solve(encoding.cnf)


def _encode_term(term, spec, cycles, **kwargs):
    eg = EGraph()
    goal = eg.add_term(term)
    saturate(eg, AxiomSet())  # constant folding only
    return eg, encode_schedule(eg, spec, [goal], cycles, **kwargs)


class TestFeasibility:
    def test_single_add_needs_one_cycle(self):
        _, enc = _encode_term(mk("add64", inp("a"), inp("b")), simple_risc(), 1)
        assert _solve(enc).satisfiable is True

    def test_dependent_chain_needs_two_cycles(self):
        term = mk("add64", mk("add64", inp("a"), inp("b")), inp("c"))
        _, enc1 = _encode_term(term, simple_risc(), 1)
        assert _solve(enc1).satisfiable is False
        _, enc2 = _encode_term(term, simple_risc(), 2)
        assert _solve(enc2).satisfiable is True

    def test_multiply_latency_respected(self):
        term = mk("mul64", inp("a"), inp("b"))
        for k in range(1, 7):
            _, enc = _encode_term(term, simple_risc(), k)
            assert _solve(enc).satisfiable is False, k
        _, enc = _encode_term(term, simple_risc(), 7)
        assert _solve(enc).satisfiable is True

    def test_single_issue_serialises_independent_ops(self):
        # Two independent adds + combining op: 3 cycles on single issue.
        term = mk(
            "bis",
            mk("add64", inp("a"), inp("b")),
            mk("xor64", inp("c"), inp("d")),
        )
        _, enc2 = _encode_term(term, simple_risc(), 2)
        assert _solve(enc2).satisfiable is False
        _, enc3 = _encode_term(term, simple_risc(), 3)
        assert _solve(enc3).satisfiable is True

    def test_multi_issue_parallelises(self):
        # The same term fits in 2 cycles on the quad-issue EV6 ... but the
        # cross-cluster delay means the combining op must wait: 3 cycles
        # when operands come from both clusters, 2 when both fit one
        # cluster's two units?  EV6 has two units per cluster, so both adds
        # can go on U0/L0 (cluster 0) and bis reads them at cycle 1: 2 cycles.
        term = mk(
            "bis",
            mk("add64", inp("a"), inp("b")),
            mk("xor64", inp("c"), inp("d")),
        )
        _, enc = _encode_term(term, ev6(), 2)
        assert _solve(enc).satisfiable is True

    def test_cross_cluster_delay_matters(self):
        # Two shifts feeding a combiner: shifts only run on U0/U1 (one per
        # cluster), so issuing both at cycle 0 puts them on *different*
        # clusters and one result pays the cross-cluster delay — the
        # combiner cannot launch at cycle 1, so 2 cycles are infeasible.
        # Serialising both shifts on one cluster (cycles 0 and 1) gets the
        # combiner launched at cycle 2: 3 cycles.  On a single-cluster
        # machine with two shifters this would fit in 2 cycles.
        term = mk(
            "bis",
            mk("sll", inp("a"), const(1)),
            mk("srl", inp("b"), const(2)),
        )
        _, enc2 = _encode_term(term, ev6(), 2)
        assert _solve(enc2).satisfiable is False
        _, enc3 = _encode_term(term, ev6(), 3)
        assert _solve(enc3).satisfiable is True

    def test_goal_in_free_class_trivially_sat(self):
        _, enc = _encode_term(inp("a"), simple_risc(), 1)
        assert _solve(enc).satisfiable is True
        assert not enc.machine_terms or True  # no machine work required

    def test_uncomputable_goal_raises(self):
        # pow is not a machine op and nothing else computes the class.
        term = mk("pow", inp("a"), inp("b"))
        with pytest.raises(EncodeError):
            _encode_term(term, simple_risc(), 4)

    def test_zero_budget_rejected(self):
        with pytest.raises(EncodeError):
            _encode_term(mk("add64", inp("a"), inp("b")), simple_risc(), 0)


class TestConstants:
    def test_small_constant_is_free(self):
        term = mk("add64", inp("a"), const(7))
        _, enc = _encode_term(term, simple_risc(), 1)
        assert _solve(enc).satisfiable is True

    def test_large_constant_needs_materialisation(self):
        term = mk("add64", inp("a"), const(0xDEADBEEF))
        _, enc1 = _encode_term(term, simple_risc(), 1)
        assert _solve(enc1).satisfiable is False  # ldiq then add
        _, enc2 = _encode_term(term, simple_risc(), 2)
        assert _solve(enc2).satisfiable is True

    def test_ldiq_disabled_makes_goal_uncomputable(self):
        term = mk("add64", inp("a"), const(0xDEADBEEF))
        with pytest.raises(EncodeError):
            _encode_term(
                term,
                simple_risc(),
                4,
                options=EncodingOptions(materialize_constants=False),
            )


class TestEncodingShape:
    def test_stats_fields(self):
        _, enc = _encode_term(mk("add64", inp("a"), inp("b")), ev6(), 2)
        st = enc.stats()
        assert st["vars"] > 0
        assert st["clauses"] > 0
        assert st["machine_terms"] >= 1

    def test_problem_size_grows_with_budget(self):
        term = mk("add64", mk("and64", inp("a"), inp("b")), inp("c"))
        sizes = []
        for k in (2, 4, 8):
            _, enc = _encode_term(term, ev6(), k)
            sizes.append(enc.cnf.stats()["vars"])
        assert sizes[0] < sizes[1] < sizes[2]

    def test_strict_availability_same_answer(self):
        term = mk("bis", mk("add64", inp("a"), inp("b")), inp("c"))
        for k in (1, 2, 3):
            _, loose = _encode_term(term, ev6(), k)
            _, strict = _encode_term(
                term, ev6(), k, options=EncodingOptions(strict_availability=True)
            )
            assert (
                _solve(loose).satisfiable == _solve(strict).satisfiable
            ), k

    def test_launch_at_most_once_still_feasible(self):
        term = mk("add64", mk("and64", inp("a"), inp("b")), inp("c"))
        _, enc = _encode_term(
            term, ev6(), 3, options=EncodingOptions(launch_at_most_once=True)
        )
        assert _solve(enc).satisfiable is True

    def test_named_variables_decode(self):
        _, enc = _encode_term(mk("add64", inp("a"), inp("b")), simple_risc(), 1)
        names = [enc.cnf.name_of(v) for v in range(1, enc.cnf.num_vars + 1)]
        kinds = {n[0] for n in names if isinstance(n, tuple)}
        assert {"F", "L", "A", "B"} >= kinds
        assert "F" in kinds and "L" in kinds


class TestEndToEndSchedules:
    @pytest.mark.parametrize("spec_fn", [simple_risc, ev6])
    def test_extracted_schedule_passes_timing(self, spec_fn):
        spec = spec_fn()
        term = mk(
            "bis",
            mk("add64", inp("a"), const(1)),
            mk("sll", inp("b"), const(3)),
        )
        eg = EGraph()
        goal = eg.add_term(term)
        saturate(eg, AxiomSet())
        for k in range(1, 8):
            enc = encode_schedule(eg, spec, [goal], k)
            res = _solve(enc)
            if res.satisfiable:
                sched = extract_schedule(eg, enc, res.model)
                report = simulate_timing(sched, spec)
                assert report.ok, report.violations
                return
        pytest.fail("no feasible budget found")

    def test_memory_load_schedules(self):
        term = mk("select", inp("M", Sort.MEM), inp("p"))
        eg = EGraph()
        goal = eg.add_term(term)
        enc = encode_schedule(eg, ev6(), [goal], 3)
        res = _solve(enc)
        assert res.satisfiable
        sched = extract_schedule(eg, enc, res.model)
        assert sched.instructions[0].mnemonic == "ldq"

    def test_memory_store_schedules(self):
        term = mk("store", inp("M", Sort.MEM), inp("p"), inp("x"))
        eg = EGraph()
        goal = eg.add_term(term)
        enc = encode_schedule(eg, ev6(), [goal], 2)
        res = _solve(enc)
        assert res.satisfiable
        sched = extract_schedule(eg, enc, res.model)
        assert sched.instructions[-1].mnemonic == "stq"
        assert sched.goal_operands[0].memory

    def test_load_after_store_dataflow(self):
        m = inp("M", Sort.MEM)
        term = mk("select", mk("store", m, inp("p"), inp("x")), inp("p"))
        eg = EGraph()
        goal = eg.add_term(term)
        # Without axioms, the only way is store (1 cycle) then load (3): 4.
        enc3 = encode_schedule(eg, ev6(), [goal], 3)
        assert _solve(enc3).satisfiable is False
        enc4 = encode_schedule(eg, ev6(), [goal], 4)
        res = _solve(enc4)
        assert res.satisfiable
        sched = extract_schedule(eg, enc4, res.model)
        mnemonics = [i.mnemonic for i in sched.instructions]
        assert mnemonics.count("stq") == 1
        assert mnemonics.count("ldq") == 1

    def test_anti_dependence_blocks_late_store(self):
        """A load of old memory and a store superseding it cannot overlap
        arbitrarily: the store must wait for the load to complete."""
        m = inp("M", Sort.MEM)
        p, q = inp("p"), inp("q")
        load_old = mk("select", m, q)
        new_mem = mk("store", m, p, inp("x"))
        eg = EGraph()
        g1 = eg.add_term(load_old)
        g2 = eg.add_term(new_mem)
        # Load takes cycles 0-2; the store may launch at 3 at the earliest,
        # completing at 3 => 4 cycles minimum.
        enc = encode_schedule(eg, ev6(), [g1, g2], 3)
        assert _solve(enc).satisfiable is False
        enc4 = encode_schedule(eg, ev6(), [g1, g2], 4)
        res = _solve(enc4)
        assert res.satisfiable
        sched = extract_schedule(eg, enc4, res.model)
        stq = next(i for i in sched.instructions if i.mnemonic == "stq")
        ldq = next(i for i in sched.instructions if i.mnemonic == "ldq")
        assert ldq.cycle + 3 - 1 < stq.cycle

    def test_guard_safety_orders_unsafe_terms(self):
        """Unsafe terms launch only after the guard completes (section 7)."""
        m = inp("M", Sort.MEM)
        guard = mk("cmpult", inp("p"), inp("r"))
        load = mk("select", m, inp("p"))
        eg = EGraph()
        g_guard = eg.add_term(guard)
        g_load = eg.add_term(load)
        load_node = next(n for n, _ in eg.all_nodes() if n.op == "select")
        enc = encode_schedule(
            eg,
            ev6(),
            [g_guard, g_load],
            4,
            unsafe_terms={load_node: g_guard},
        )
        res = _solve(enc)
        assert res.satisfiable
        sched = extract_schedule(eg, enc, res.model)
        cmp_instr = next(i for i in sched.instructions if i.mnemonic == "cmpult")
        ldq = next(i for i in sched.instructions if i.mnemonic == "ldq")
        assert cmp_instr.cycle + 1 - 1 < ldq.cycle

    def test_guarded_load_infeasible_in_three_cycles(self):
        m = inp("M", Sort.MEM)
        guard = mk("cmpult", inp("p"), inp("r"))
        load = mk("select", m, inp("p"))
        eg = EGraph()
        g_guard = eg.add_term(guard)
        g_load = eg.add_term(load)
        load_node = next(n for n, _ in eg.all_nodes() if n.op == "select")
        enc = encode_schedule(
            eg, ev6(), [g_guard, g_load], 3, unsafe_terms={load_node: g_guard}
        )
        assert _solve(enc).satisfiable is False
